#include "net/listener.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace edgellm::net {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error(std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
  }
}

std::pair<std::string, int> split_host_port(const std::string& addr) {
  const size_t colon = addr.rfind(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("listen address must be host:port, got \"" + addr + "\"");
  }
  const std::string host = colon == 0 ? std::string("0.0.0.0") : addr.substr(0, colon);
  const std::string port_s = addr.substr(colon + 1);
  if (port_s.empty() || port_s.size() > 5 ||
      port_s.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("malformed port in listen address \"" + addr + "\"");
  }
  const int port = std::stoi(port_s);
  if (port > 65535) {
    throw std::invalid_argument("port out of range in listen address \"" + addr + "\"");
  }
  return {host, port};
}

Listener::Listener(const std::string& host, int port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot parse listen host \"" + host + "\" (IPv4 only)");
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("bind " + host + ":" + std::to_string(port) + ": " + err);
  }
  if (::listen(fd_, backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("listen: " + err);
  }
  set_nonblocking(fd_);

  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  } else {
    port_ = port;
  }
}

Listener::~Listener() { close_listener(); }

int Listener::accept_client() {
  if (fd_ < 0) return -1;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return -1;
  set_nonblocking(client);
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return client;
}

void Listener::close_listener() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace edgellm::net
