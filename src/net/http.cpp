#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace edgellm::net {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

std::string trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

HttpRequestParser::HttpRequestParser(HttpLimits limits) : limits_(limits) {}

void HttpRequestParser::reset() {
  state_ = State::kRequestLine;
  started_ = false;
  line_.clear();
  header_bytes_ = 0;
  n_headers_ = 0;
  method_.clear();
  path_.clear();
  query_.clear();
  headers_.clear();
  http11_ = true;
  keep_alive_ = true;
  expect_continue_ = false;
  chunked_ = false;
  have_content_length_ = false;
  content_length_ = 0;
  chunk_remaining_ = 0;
  body_.clear();
  error_status_ = 0;
  error_reason_.clear();
}

void HttpRequestParser::fail(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
}

std::string HttpRequestParser::header(const std::string& lower_name) const {
  const auto it = headers_.find(lower_name);
  return it == headers_.end() ? std::string() : it->second;
}

size_t HttpRequestParser::feed(const char* data, size_t n) {
  size_t i = 0;
  while (i < n && state_ != State::kComplete && state_ != State::kError) {
    switch (state_) {
      case State::kRequestLine:
      case State::kHeaders:
      case State::kChunkSize:
      case State::kChunkDataEnd:
      case State::kTrailers: {
        const char c = data[i++];
        started_ = true;
        if (c == '\n') {
          if (!line_.empty() && line_.back() == '\r') line_.pop_back();
          on_line();
          line_.clear();
          break;
        }
        line_.push_back(c);
        // Per-line overflow guards: a line that can never end within its
        // budget is rejected *now*, not after the attacker streams a
        // gigabyte of header.
        if (state_ == State::kRequestLine &&
            static_cast<int64_t>(line_.size()) > limits_.max_request_line) {
          fail(414, "request line exceeds " + std::to_string(limits_.max_request_line) +
                        " bytes");
        } else if ((state_ == State::kHeaders || state_ == State::kTrailers) &&
                   header_bytes_ + static_cast<int64_t>(line_.size()) >
                       limits_.max_header_bytes) {
          fail(431, "header block exceeds " + std::to_string(limits_.max_header_bytes) +
                        " bytes");
        } else if (state_ == State::kChunkSize && line_.size() > 32) {
          fail(400, "malformed chunk size line");
        }
        break;
      }
      case State::kBody: {
        const size_t want = static_cast<size_t>(content_length_) - body_.size();
        const size_t take = std::min(want, n - i);
        body_.append(data + i, take);
        i += take;
        if (body_.size() == static_cast<size_t>(content_length_)) state_ = State::kComplete;
        break;
      }
      case State::kChunkData: {
        const size_t take = std::min(static_cast<size_t>(chunk_remaining_), n - i);
        body_.append(data + i, take);
        i += take;
        chunk_remaining_ -= static_cast<int64_t>(take);
        if (static_cast<int64_t>(body_.size()) > limits_.max_body_bytes) {
          fail(413, "chunked body exceeds " + std::to_string(limits_.max_body_bytes) +
                        " bytes");
          break;
        }
        if (chunk_remaining_ == 0) state_ = State::kChunkDataEnd;
        break;
      }
      case State::kComplete:
      case State::kError: break;  // unreachable (loop condition)
    }
  }
  return i;
}

void HttpRequestParser::on_line() {
  switch (state_) {
    case State::kRequestLine:
      if (line_.empty()) {
        // RFC 9112 tolerates CRLFs before the request line; don't let an
        // attacker spend the whole header budget on them though.
        header_bytes_ += 2;
        if (header_bytes_ > limits_.max_header_bytes) {
          fail(400, "excessive leading empty lines");
        }
        return;
      }
      on_request_line();
      return;
    case State::kHeaders:
      header_bytes_ += static_cast<int64_t>(line_.size()) + 2;
      if (line_.empty()) {
        on_headers_done();
        return;
      }
      on_header_line();
      return;
    case State::kChunkSize: on_chunk_size_line(); return;
    case State::kChunkDataEnd:
      if (!line_.empty()) {
        fail(400, "missing CRLF after chunk data");
        return;
      }
      state_ = State::kChunkSize;
      return;
    case State::kTrailers:
      header_bytes_ += static_cast<int64_t>(line_.size()) + 2;
      if (line_.empty()) state_ = State::kComplete;
      return;
    default: return;
  }
}

void HttpRequestParser::on_request_line() {
  const size_t sp1 = line_.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos : line_.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos || line_.find(' ', sp2 + 1) != std::string::npos) {
    fail(400, "malformed request line");
    return;
  }
  method_ = line_.substr(0, sp1);
  std::string target = line_.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line_.substr(sp2 + 1);
  if (method_.empty() || target.empty()) {
    fail(400, "malformed request line");
    return;
  }
  for (char c : method_) {
    if (!std::isupper(static_cast<unsigned char>(c))) {
      fail(400, "malformed method token");
      return;
    }
  }
  if (version == "HTTP/1.1") {
    http11_ = true;
  } else if (version == "HTTP/1.0") {
    http11_ = false;
  } else {
    fail(505, "unsupported protocol version \"" + version + "\"");
    return;
  }
  keep_alive_ = http11_;
  const size_t q = target.find('?');
  if (q != std::string::npos) {
    query_ = target.substr(q + 1);
    target.resize(q);
  }
  path_ = std::move(target);
  state_ = State::kHeaders;
}

void HttpRequestParser::on_header_line() {
  if (++n_headers_ > limits_.max_headers) {
    fail(431, "more than " + std::to_string(limits_.max_headers) + " headers");
    return;
  }
  const size_t colon = line_.find(':');
  if (colon == std::string::npos || colon == 0) {
    fail(400, "malformed header line");
    return;
  }
  // Whitespace between the field name and the colon is a classic
  // request-smuggling vector; reject it outright.
  if (line_[colon - 1] == ' ' || line_[colon - 1] == '\t') {
    fail(400, "whitespace before header colon");
    return;
  }
  const std::string name = lower(line_.substr(0, colon));
  const std::string value = trim(line_.substr(colon + 1));

  if (name == "content-length") {
    if (!all_digits(value) || value.size() > 18) {
      fail(400, "malformed Content-Length");
      return;
    }
    const int64_t v = std::stoll(value);
    if (have_content_length_ && v != content_length_) {
      fail(400, "conflicting Content-Length headers");
      return;
    }
    have_content_length_ = true;
    content_length_ = v;
  } else if (name == "transfer-encoding") {
    if (lower(value) != "chunked") {
      fail(501, "unimplemented transfer coding \"" + value + "\"");
      return;
    }
    chunked_ = true;
  } else if (name == "connection") {
    const std::string v = lower(value);
    if (v == "close") keep_alive_ = false;
    else if (v == "keep-alive") keep_alive_ = true;
  } else if (name == "expect") {
    if (lower(value) != "100-continue") {
      fail(417, "unsupported Expect \"" + value + "\"");
      return;
    }
    expect_continue_ = true;
  }
  headers_.emplace(name, value);  // first value wins on duplicates
}

void HttpRequestParser::on_headers_done() {
  if (chunked_ && have_content_length_) {
    // Ambiguous framing is how requests get smuggled through proxies;
    // never guess.
    fail(400, "both Transfer-Encoding and Content-Length present");
    return;
  }
  if (have_content_length_ && content_length_ > limits_.max_body_bytes) {
    fail(413, "declared body of " + std::to_string(content_length_) + " bytes exceeds cap of " +
                  std::to_string(limits_.max_body_bytes));
    return;
  }
  if (chunked_) {
    state_ = State::kChunkSize;
  } else if (have_content_length_ && content_length_ > 0) {
    state_ = State::kBody;
  } else {
    state_ = State::kComplete;
  }
}

void HttpRequestParser::on_chunk_size_line() {
  // Strict hex, no chunk extensions: the serving clients never send them
  // and every parser differential starts with "lenient about extensions".
  if (line_.empty() || line_.size() > 8) {
    fail(400, "malformed chunk size");
    return;
  }
  int64_t size = 0;
  for (char c : line_) {
    const unsigned char u = static_cast<unsigned char>(c);
    int digit;
    if (std::isdigit(u)) digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else {
      fail(400, "malformed chunk size");
      return;
    }
    size = size * 16 + digit;
  }
  if (static_cast<int64_t>(body_.size()) + size > limits_.max_body_bytes) {
    fail(413, "chunked body exceeds " + std::to_string(limits_.max_body_bytes) + " bytes");
    return;
  }
  if (size == 0) {
    state_ = State::kTrailers;
  } else {
    chunk_remaining_ = size;
    state_ = State::kChunkData;
  }
}

const char* status_reason(int status) {
  switch (status) {
    case 100: return "Continue";
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 417: return "Expectation Failed";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 499: return "Client Closed Request";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string http_response(int status, std::string_view content_type, std::string_view body,
                          bool keep_alive) {
  std::string r = "HTTP/1.1 " + std::to_string(status) + " " + status_reason(status) + "\r\n";
  r += "Content-Type: ";
  r += content_type;
  r += "\r\nContent-Length: " + std::to_string(body.size()) + "\r\n";
  r += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  r += "\r\n";
  r += body;
  return r;
}

std::string streaming_response_head(int status, std::string_view content_type, bool keep_alive) {
  std::string r = "HTTP/1.1 " + std::to_string(status) + " " + status_reason(status) + "\r\n";
  r += "Content-Type: ";
  r += content_type;
  r += "\r\nTransfer-Encoding: chunked\r\n";
  r += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  r += "\r\n";
  return r;
}

std::string chunk_frame(std::string_view payload) {
  char head[16];
  std::snprintf(head, sizeof(head), "%zx\r\n", payload.size());
  std::string r(head);
  r += payload;
  r += "\r\n";
  return r;
}

std::string json_error_body(std::string_view message) {
  std::string out = "{\"error\": \"";
  for (const char ch : message) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(ch));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out += "\"}";
  return out;
}

}  // namespace edgellm::net
