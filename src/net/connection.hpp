// Per-connection state for the HTTP front door: one keep-alive client
// session, its incremental parser, its bounded write buffer, and — while a
// completion request is in flight — the stream handoff shared with the
// serving engine's token sink.
//
// Threading: a Connection is owned and mutated exclusively by the server's
// event-loop thread. The *only* cross-thread object is StreamState, which
// the engine's StreamSink callbacks (scheduler thread) push into under its
// own small mutex; the event loop drains it into the connection's write
// buffer. Neither side ever holds that mutex while touching the engine or
// a socket, so there is no lock-order coupling with the engine's lock.
#pragma once

#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>

#include "net/http.hpp"
#include "serve/request.hpp"

namespace edgellm::net {

/// The engine -> event-loop handoff for one streamed request. Tokens queue
/// here (8 bytes each, bounded by the request's max_new_tokens) when the
/// client drains slower than the engine decodes — the stream pauses, the
/// batch does not.
struct StreamState {
  std::mutex mu;
  std::deque<int64_t> tokens;
  bool done = false;
  serve::Completion completion;  ///< valid once done
};

class Connection {
 public:
  Connection(int fd, int64_t id, HttpLimits limits, int64_t write_cap,
             std::chrono::steady_clock::time_point now)
      : fd(fd), id(id), parser(limits), write_cap(write_cap), opened(now), last_activity(now) {}

  /// What the event loop is doing with this connection.
  enum class Phase {
    kRequest,    ///< reading/awaiting the next request (keep-alive idle included)
    kStreaming,  ///< a completion request is in flight; response streams out
  };

  int fd = -1;
  int64_t id = 0;
  Phase phase = Phase::kRequest;
  HttpRequestParser parser;

  /// Bytes read off the socket; [in_off, inbuf.size()) is not yet fed to
  /// the parser (pipelined requests wait here while a response is being
  /// produced). Consumed via consume_in(), which compacts lazily.
  std::string inbuf;
  size_t in_off = 0;

  /// Pending output; [out_off, out.size()) is unflushed. Appends are gated
  /// on write_cap so a dead-slow client cannot balloon this buffer.
  std::string out;
  size_t out_off = 0;
  int64_t write_cap = 0;

  bool close_after_flush = false;
  bool sent_continue = false;  ///< interim 100 Continue already written

  // --- in-flight completion request (kStreaming only) ---
  std::shared_ptr<StreamState> stream;
  std::future<serve::Completion> fut;
  int64_t req_id = 0;
  bool response_started = false;  ///< head bytes (200 chunked or error) queued
  bool request_keep_alive = true; ///< parsed request asked for keep-alive
  int64_t tokens_streamed = 0;
  std::chrono::steady_clock::time_point req_dispatch_t;

  std::chrono::steady_clock::time_point opened;
  /// Last forward progress: a byte read, a byte written, or nothing owed.
  /// The idle/slowloris/stalled-writer timeout keys off this.
  std::chrono::steady_clock::time_point last_activity;
  /// First byte of the *current* request (slowloris guard: a request must
  /// complete within the idle window regardless of byte trickle).
  std::chrono::steady_clock::time_point request_started;
  bool request_in_progress = false;

  bool want_write() const { return out_off < out.size(); }
  int64_t out_pending() const { return static_cast<int64_t>(out.size() - out_off); }

  /// Consumed-prefix compaction shared by both buffers. A full drain is a
  /// free clear(). Otherwise compact only when the consumed prefix is both
  /// large AND at least as big as the unconsumed tail: erase(0, off) moves
  /// the whole tail, so compacting on a bare size threshold is quadratic
  /// for a slow reader with a deep backlog (every append re-moves the
  /// backlog). This policy amortises each consumed byte to O(1) moves and
  /// bounds slack at the larger of 64KB and the pending bytes.
  static void compact(std::string& buf, size_t& off) {
    if (off == buf.size()) {
      buf.clear();
      off = 0;
    } else if (off > 65536 && off >= buf.size() - off) {
      buf.erase(0, off);
      off = 0;
    }
  }

  /// Appends response bytes, compacting the flushed prefix lazily (keeps
  /// the buffer from growing monotonically on keep-alive).
  void queue_out(std::string_view bytes) {
    compact(out, out_off);
    out.append(bytes);
  }

  /// Input bytes not yet fed to the parser.
  std::string_view in_pending() const { return std::string_view(inbuf).substr(in_off); }

  /// Marks `n` input bytes parser-consumed and compacts lazily, so a burst
  /// of pipelined requests does not re-copy the remaining tail per request.
  void consume_in(size_t n) {
    in_off += n;
    compact(inbuf, in_off);
  }
};

}  // namespace edgellm::net
