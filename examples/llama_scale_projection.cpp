// Paper-scale what-if: project Edge-LLM's per-iteration latency and memory
// for a LLaMA-7B-shaped model on the modelled edge device, sweeping the two
// knobs a deployment engineer actually owns — the compression budget and
// the backprop window. Everything here is analytic (no 7B weights exist in
// this process); the same simulator is cross-validated against the real
// training loop at small scale by the test suite.
//
// Build & run:  ./build/examples/llama_scale_projection
#include <iostream>

#include "runtime/simulator.hpp"
#include "runtime/table.hpp"

int main() {
  using namespace edgellm;
  using runtime::fmt;

  nn::ModelConfig llama;
  llama.vocab = 32000;
  llama.d_model = 4096;
  llama.n_layers = 32;
  llama.n_heads = 32;
  llama.d_ff = 11008;
  llama.max_seq = 2048;
  llama.swiglu = true;  // LLaMA's actual FFN structure

  runtime::SimulatorConfig sim;
  sim.batch = 1;
  sim.seq = 512;

  const runtime::MethodReport vanilla =
      runtime::simulate_method(llama, runtime::vanilla_method(llama), sim);
  std::cout << "vanilla full tuning, one iteration: " << fmt(vanilla.expected_ms, 0)
            << " ms, peak memory " << fmt(vanilla.peak_memory_bytes / 1e9, 1) << " GB\n\n";

  runtime::TablePrinter table({10, 10, 14, 12, 14, 12});
  table.row({"bits", "window", "iter ms", "speedup", "peak mem GB", "fits 12GB?"});
  table.rule();

  for (int bits : {8, 4, 3}) {
    for (int64_t window : {16, 8, 4, 2}) {
      runtime::MethodSpec m;
      m.name = "edge-llm";
      m.policy.layers.assign(32, core::LayerPolicy{bits, 0.5f});
      m.exits = {16, 24, 32};
      m.exit_probs = {1.0 / 3, 1.0 / 3, 1.0 / 3};
      m.backprop_window = window;
      const runtime::MethodReport rep = runtime::simulate_method(llama, m, sim);
      table.row({std::to_string(bits) + "b/50%", std::to_string(window),
                 fmt(rep.expected_ms, 0), fmt(vanilla.expected_ms / rep.expected_ms, 2) + "x",
                 fmt(rep.peak_memory_bytes / 1e9, 2),
                 rep.peak_memory_bytes < 12e9 ? "yes" : "no"});
    }
  }

  std::cout << "\nReading: vanilla 7B adaptation needs ~" << fmt(vanilla.peak_memory_bytes / 1e9, 0)
            << " GB (no edge device has that); with 3-4 bit LUC weights and a small\n"
               "backprop window the same iteration fits a Jetson-class 12-16 GB module\n"
               "and runs multiple times faster.\n";
  return 0;
}
