// Hardware schedule exploration — uses the src/hw substrate directly to
// answer deployment questions without touching any weights: how does one
// adaptation iteration map onto different edge devices, and what does the
// schedule search buy on each?
//
// Build & run:  ./build/examples/schedule_explorer
#include <iostream>

#include "hw/search.hpp"
#include "runtime/table.hpp"

int main() {
  using namespace edgellm;
  using runtime::fmt;

  // A mid-size on-device model (GPT2-small-ish) with Edge-LLM settings:
  // 4-bit 50%-pruned blocks, exit at layer 8 of 12, 2-layer window.
  nn::ModelConfig cfg;
  cfg.vocab = 8192;
  cfg.d_model = 768;
  cfg.n_layers = 12;
  cfg.n_heads = 12;
  cfg.max_seq = 256;
  std::vector<hw::LayerCompression> comp(12, {4, 0.5f, false});
  hw::IterationSpec iter;
  iter.batch = 2;
  iter.seq = 128;
  iter.exit_layer = 8;
  iter.backprop_depth = 2;

  const auto workloads = hw::training_iteration_workloads(cfg, comp, iter);
  int64_t total_macs = 0;
  for (const auto& w : workloads) total_macs += w.total_macs();
  std::cout << "one adaptation iteration = " << workloads.size() << " layers, "
            << fmt(static_cast<double>(total_macs) / 1e9, 2) << " GMACs\n\n";

  // Candidate devices.
  std::vector<hw::DeviceModel> devices = {hw::default_edge_device(),
                                          hw::constrained_edge_device()};
  {
    hw::DeviceModel big = hw::default_edge_device();
    big.name = "edge-npu-large";
    big.peak_macs_per_cycle = 1024.0;
    big.dram_bytes_per_cycle = 64.0;
    big.sram_bytes = 1024.0 * 1024.0;
    devices.push_back(big);
  }

  runtime::TablePrinter table({18, 12, 12, 12, 12, 12});
  table.row({"device", "default ms", "searched ms", "gain", "util", "energy mJ"});
  table.rule();
  const hw::SearchConfig scfg;
  for (const hw::DeviceModel& dev : devices) {
    const hw::IterationPlan deflt = hw::schedule_iteration_default(dev, workloads);
    const hw::IterationPlan searched = hw::schedule_iteration(dev, workloads, scfg);
    table.row({dev.name, fmt(dev.cycles_to_ms(deflt.total_cycles), 2),
               fmt(dev.cycles_to_ms(searched.total_cycles), 2),
               fmt(deflt.total_cycles / searched.total_cycles, 2) + "x",
               fmt(searched.gemm_utilization, 2),
               fmt(searched.total_energy_pj * 1e-9, 2)});
  }

  // Drill into what got pinned on the large device (its 1 MiB SRAM can
  // hold whole compressed weight matrices).
  const hw::IterationPlan plan = hw::schedule_iteration(devices[2], workloads, scfg);
  std::cout << "\npinned weight residency on " << devices[2].name << ": "
            << fmt(plan.pinned_bytes / 1024.0, 1) << " KiB of "
            << fmt(devices[2].sram_bytes / 1024.0, 0) << " KiB SRAM\n";
  std::cout << "\nper-layer latency (first 6 layers):\n";
  for (size_t i = 0; i < plan.layers.size() && i < 6; ++i) {
    const auto& lp = plan.layers[i];
    std::cout << "  " << lp.name << ": " << fmt(lp.cycles(), 0) << " cycles, "
              << fmt(lp.dram_bytes() / 1024.0, 0) << " KiB DRAM\n";
  }
  return 0;
}
