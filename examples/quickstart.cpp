// Quickstart: the whole Edge-LLM flow in ~40 lines of user code.
//
//   1. Get a pretrained base model (here: pretrained in-process on a
//      synthetic base domain — the stand-in for an LLM checkpoint).
//   2. Point run_pipeline() at the new domain you want to adapt to.
//   3. Read back the policy it chose and the quality it reached.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/pipeline.hpp"
#include "data/eval.hpp"

int main() {
  using namespace edgellm;

  // The data the device sees: a base domain the model was pretrained on,
  // and a shifted domain it must adapt to on-device.
  data::MarkovChain::Config dcfg;
  dcfg.vocab = 32;
  dcfg.order = 1;
  dcfg.branch = 4;
  dcfg.seed = 42;
  const data::MarkovChain base(dcfg);
  const data::MarkovChain target = base.shifted(/*fraction=*/0.6f, /*seed=*/43);

  // A small causal LM with early exits at layers 2 and 4 (plus the final 6).
  nn::ModelConfig mcfg;
  mcfg.vocab = 32;
  mcfg.d_model = 32;
  mcfg.n_layers = 6;
  mcfg.n_heads = 4;
  mcfg.max_seq = 32;
  mcfg.exit_layers = {2, 4, 6};

  std::cout << "pretraining base model (stands in for a downloaded checkpoint)...\n";
  Rng rng(7);
  auto model = core::pretrain_base_model(mcfg, base, /*iters=*/800, /*batch=*/8, /*seq=*/16, rng);

  // Edge-LLM: sensitivity -> LUC compression -> adaptive layer tuning ->
  // exit voting, all driven by one config.
  core::PipelineConfig cfg;
  cfg.adaptation_iters = 200;
  cfg.luc.target_effective_bits = 3.0;        // ~5.3x weight compression
  cfg.luc.search = core::LucConfig::Search::kExactDp;
  cfg.tuner.backprop_window = 2;              // only 2 layers train per step
  cfg.tuner.optim.lr = 1e-2f;
  cfg.voter.mode = core::VotingMode::kCalibratedWeight;

  std::cout << "adapting to the shifted domain...\n";
  const core::PipelineResult result = core::run_pipeline(*model, target, cfg);

  std::cout << "\nLUC policy (per layer): ";
  for (const auto& lp : result.policy.layers) {
    std::cout << lp.bits << "b/" << lp.sparsity << " ";
  }
  std::cout << "\naverage effective bits : " << result.policy.avg_effective_bits()
            << "\nfinal training loss    : " << result.loss_curve.back()
            << "\nvoted held-out ppl     : " << result.voted_perplexity
            << "\nMCQ accuracy (voted)   : " << result.mcq_accuracy
            << "\npeak activations       : " << result.peak_activation_bytes / 1024 << " KiB"
            << "\nmodel storage          : " << result.model_storage_bytes / 1024 << " KiB\n";
  return 0;
}
