// edgellm_cli — a small command-line front end over the library, the way a
// downstream user would actually drive it on a device. Checkpoints are
// self-describing (architecture config embedded), so every subcommand only
// needs a file path.
//
//   edgellm_cli pretrain --out base.bin [--iters 800] [--layers 6] [--dmodel 32]
//   edgellm_cli adapt    --in base.bin --out adapted.bin [--shift 0.6]
//                        [--budget 3.0] [--window 2] [--iters 250]
//                        [--checkpoint-dir DIR] [--checkpoint-every N] [--resume 1]
//   edgellm_cli eval     --in adapted.bin [--shift 0.6]
//   edgellm_cli generate --in adapted.bin [--tokens 24] [--temp 0.7] [--shift 0.6]
//   edgellm_cli serve    --in adapted.bin [--requests FILE|-] [--threads 2]
//                        [--batch 8] [--queue 64] [--kv-budget BYTES]
//                        [--quantize-kv 0|1] [--kv-paged 0|1]
//                        [--kv-block-tokens N] [--speculative-depth L]
//                        [--draft-k K] [--metrics out.csv]
//                        [--listen host:port] [--max-connections N]
//                        [--idle-timeout-ms MS]
//
// `serve` runs the concurrent batched serving engine (src/serve): requests
// come in as JSONL (one {"id":..,"prompt":[..],"exit":"voted"|N|"final",..}
// object per line, default stdin), completions go to stdout as JSONL, and
// --metrics writes one CSV row of timing/memory per request. With --listen
// it instead serves HTTP (src/net): POST /v1/completions streams tokens as
// they decode, GET /metrics and /healthz for operators; SIGINT/SIGTERM
// drain gracefully in both modes (docs/SERVING.md, "HTTP API").
//
// With --checkpoint-dir, adaptation writes atomic CRC-checked snapshots of
// the FULL training state every --checkpoint-every iterations; rerunning
// with --resume 1 after an interruption continues bit-exactly where the
// last snapshot left off (see docs/ROBUSTNESS.md).
//
// Build & run:  ./build/examples/edgellm_cli pretrain --out /tmp/base.bin
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "data/eval.hpp"
#include "hw/measured.hpp"
#include "nn/decoder.hpp"
#include "obs/trace.hpp"
#include "tensor/gemm.hpp"
#include "tensor/parallel.hpp"
#include "tensor/simd.hpp"
#include "nn/serialize.hpp"
#include "runtime/checkpointer.hpp"
#include "runtime/table.hpp"
#include "runtime/trace.hpp"
#include "net/listener.hpp"
#include "net/server.hpp"
#include "net/signals.hpp"
#include "serve/engine.hpp"

namespace {

using namespace edgellm;
using runtime::fmt;

// Flat --key value argument map.
std::map<std::string, std::string> parse_args(int argc, char** argv, int first) {
  std::map<std::string, std::string> args;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    check_arg(key.rfind("--", 0) == 0, "flags must start with --: " + key);
    args[key.substr(2)] = argv[i + 1];
  }
  return args;
}

double get_num(const std::map<std::string, std::string>& args, const std::string& key,
               double fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : std::stod(it->second);
}

std::string get_str(const std::map<std::string, std::string>& args, const std::string& key) {
  const auto it = args.find(key);
  check_arg(it != args.end(), "missing required flag --" + key);
  return it->second;
}

// --schedule-cache FILE: measured per-layer schedule autotuning for the
// blocked GEMM kernels (hw/measured.hpp). Loads the on-disk cache if it
// exists, tunes every unique GEMM shape the model runs at `batch_rows`
// activation rows (cache hits skip the timing), installs the winning
// blockings process-wide, and saves the cache back. Schedules only ever
// change speed — blocked kernels are bitwise identical to the naive ones —
// so this is safe on any subcommand.
void apply_schedule_cache(const std::map<std::string, std::string>& args, nn::CausalLm& model,
                          int64_t batch_rows) {
  if (!args.contains("schedule-cache")) return;
  const std::string path = args.at("schedule-cache");
  static hw::ScheduleCache cache;  // outlives the engine; one per process
  const bool loaded = cache.load(path);
  hw::MeasuredBackend backend(hw::MeasuredConfig{}, &cache);
  const hw::ModelTuneSummary s = hw::autotune_model_gemms(backend, model, batch_rows);
  check_arg(cache.save(path), "cannot write schedule cache " + path);
  std::cerr << "schedule cache " << path << (loaded ? " (warm)" : " (new)") << ": "
            << s.shapes_tuned << " shape(s), " << s.cache_hits << " from cache, "
            << fmt(s.tuning_ms, 1) << " ms tuning\n";
}

data::MarkovChain make_domain(double shift) {
  data::MarkovChain::Config dcfg;
  dcfg.vocab = 32;
  dcfg.order = 1;
  dcfg.branch = 4;
  dcfg.seed = 42;
  const data::MarkovChain base(dcfg);
  return shift > 0.0 ? base.shifted(static_cast<float>(shift), 4242) : base;
}

int cmd_pretrain(const std::map<std::string, std::string>& args) {
  nn::ModelConfig cfg;
  cfg.vocab = 32;
  cfg.d_model = static_cast<int64_t>(get_num(args, "dmodel", 32));
  cfg.n_layers = static_cast<int64_t>(get_num(args, "layers", 6));
  cfg.n_heads = 4;
  cfg.max_seq = 32;
  const int64_t third = cfg.n_layers / 3;
  cfg.exit_layers = {std::max<int64_t>(1, third), std::max<int64_t>(2, 2 * third),
                     cfg.n_layers};

  const int64_t iters = static_cast<int64_t>(get_num(args, "iters", 800));
  std::cout << "pretraining " << cfg.n_layers << "L/d" << cfg.d_model << " for " << iters
            << " iterations...\n";
  Rng rng(static_cast<uint64_t>(get_num(args, "seed", 7)));
  auto model = core::pretrain_base_model(cfg, make_domain(0.0), iters, 8, 16, rng);

  const std::string out = get_str(args, "out");
  nn::save_model_with_config(*model, out);
  std::cout << "saved " << out << " (" << model->param_count() << " params)\n";
  return 0;
}

int cmd_adapt(const std::map<std::string, std::string>& args) {
  auto model = nn::load_model_with_config(get_str(args, "in"));
  const double shift = get_num(args, "shift", 0.6);

  core::PipelineConfig pcfg;
  pcfg.adaptation_iters = static_cast<int64_t>(get_num(args, "iters", 250));
  pcfg.luc.target_effective_bits = get_num(args, "budget", 3.0);
  pcfg.luc.search = core::LucConfig::Search::kExactDp;
  pcfg.tuner.backprop_window = static_cast<int64_t>(get_num(args, "window", 2));
  pcfg.tuner.optim.lr = static_cast<float>(get_num(args, "lr", 1e-2));

  // Crash-safe checkpointing: periodic atomic snapshots of the full
  // training state, with bit-exact resume after an interruption.
  std::unique_ptr<runtime::Checkpointer> ckpt;
  if (args.contains("checkpoint-dir")) {
    runtime::CheckpointerConfig ccfg;
    ccfg.dir = args.at("checkpoint-dir");
    ccfg.keep = static_cast<int64_t>(get_num(args, "checkpoint-keep", 3));
    ckpt = std::make_unique<runtime::Checkpointer>(ccfg);
    pcfg.snapshots = ckpt.get();
    pcfg.checkpoint_every = static_cast<int64_t>(get_num(args, "checkpoint-every", 25));
    pcfg.resume = get_num(args, "resume", 0) != 0;
  }

  apply_schedule_cache(args, *model, pcfg.batch * pcfg.seq);

  std::cout << "adapting to shift " << shift << " (budget "
            << pcfg.luc.target_effective_bits << " eff bits, window "
            << pcfg.tuner.backprop_window << ")...\n";
  const core::PipelineResult res = core::run_pipeline(*model, make_domain(shift), pcfg);
  if (res.resumed_from_iter >= 0) {
    std::cout << "resumed from checkpointed iteration " << res.resumed_from_iter << "\n";
  }
  if (res.skipped_steps > 0 || res.rollbacks > 0) {
    std::cout << "numeric guard: skipped " << res.skipped_steps << " bad step(s), "
              << res.rollbacks << " rollback(s)\n";
  }

  std::cout << "policy: ";
  for (const auto& lp : res.policy.layers) std::cout << lp.bits << "b/" << lp.sparsity << " ";
  std::cout << "\nvoted ppl " << fmt(res.voted_perplexity, 2) << ", MCQ acc "
            << fmt(res.mcq_accuracy, 3) << ", peak activations "
            << res.peak_activation_bytes / 1024 << " KiB\n";

  if (args.contains("trace")) {
    runtime::write_loss_curve(args.at("trace"), res.loss_curve);
    std::cout << "wrote loss curve to " << args.at("trace") << "\n";
  }
  if (args.contains("metrics-out")) {
    obs::Registry::global().write_json(args.at("metrics-out"));
    std::cout << "wrote metrics to " << args.at("metrics-out") << "\n";
  }

  const std::string out = get_str(args, "out");
  nn::save_model_with_config(*model, out);
  std::cout << "saved " << out << "\n";
  return 0;
}

int cmd_eval(const std::map<std::string, std::string>& args) {
  auto model = nn::load_model_with_config(get_str(args, "in"));
  const data::MarkovChain domain = make_domain(get_num(args, "shift", 0.6));
  Rng rng(555);
  std::vector<data::LmBatch> eval;
  for (int i = 0; i < 8; ++i) eval.push_back(data::sample_lm_batch(domain, 8, 16, rng));

  runtime::TablePrinter table({14, 12, 10});
  table.row({"exit", "loss", "ppl"});
  table.rule();
  for (int64_t e : model->exit_layers()) {
    const float loss = data::lm_loss(*model, eval, e);
    table.row({"layer " + std::to_string(e), fmt(loss, 4), fmt(data::perplexity(loss), 2)});
  }
  core::ExitVoter voter(*model, {core::VotingMode::kCalibratedWeight, 0.5f});
  std::vector<data::LmBatch> calib = {data::sample_lm_batch(domain, 8, 16, rng)};
  voter.calibrate(calib);
  const float voted = voter.voted_loss(eval);
  table.row({"voted", fmt(voted, 4), fmt(data::perplexity(voted), 2)});
  return 0;
}

int cmd_generate(const std::map<std::string, std::string>& args) {
  auto model = nn::load_model_with_config(get_str(args, "in"));
  const data::MarkovChain domain = make_domain(get_num(args, "shift", 0.6));

  nn::IncrementalDecoder dec(*model);
  nn::GenerateConfig gcfg;
  gcfg.max_new_tokens = static_cast<int64_t>(get_num(args, "tokens", 24));
  gcfg.temperature = static_cast<float>(get_num(args, "temp", 0.7));
  gcfg.top_k = static_cast<int64_t>(get_num(args, "topk", 0));

  Rng rng(static_cast<uint64_t>(get_num(args, "seed", 11)));
  const auto prompt = domain.sample(4, rng);
  const auto gen = dec.generate(prompt, gcfg, rng);
  std::cout << "prompt      : ";
  for (int64_t t : prompt) std::cout << t << ' ';
  std::cout << "\ncontinuation: ";
  for (int64_t t : gen) std::cout << t << ' ';
  std::cout << "\nkv cache    : " << dec.kv_cache_bytes() / 1024 << " KiB\n";
  return 0;
}

int cmd_serve(const std::map<std::string, std::string>& args) {
  auto model = nn::load_model_with_config(get_str(args, "in"));

  serve::EngineConfig ecfg;
  ecfg.threads = static_cast<int64_t>(get_num(args, "threads", 2));
  ecfg.max_batch = static_cast<int64_t>(get_num(args, "batch", 8));
  ecfg.queue_capacity = static_cast<int64_t>(get_num(args, "queue", 64));
  ecfg.kv_byte_budget = static_cast<int64_t>(get_num(args, "kv-budget", 0));
  ecfg.quantize_kv = get_num(args, "quantize-kv", 0) != 0;
  ecfg.kv_paged = get_num(args, "kv-paged", 0) != 0;
  ecfg.kv_block_tokens = static_cast<int64_t>(get_num(args, "kv-block-tokens", 16));
  ecfg.pack_compressed_weights = get_num(args, "packed-weights", 0) != 0;
  // Carry the global --fast-math choice through the engine (its ctor
  // re-applies the flag, so leaving this unset would reset it).
  ecfg.fast_math = ops::gemm::fast_math_enabled();
  // Engine-wide defaults for requests with exit "speculative" that don't
  // carry their own draft_depth/draft_k (docs/SERVING.md).
  ecfg.speculative_depth = static_cast<int64_t>(get_num(args, "speculative-depth", 0));
  ecfg.draft_k = static_cast<int64_t>(get_num(args, "draft-k", 4));

  // Overload policy (docs/ROBUSTNESS.md): all thresholds default to 0 =
  // inert, so a plain `serve` behaves exactly as before the resilience
  // layer existed.
  if (args.contains("shed-policy")) {
    const std::string p = args.at("shed-policy");
    if (p == "reject") ecfg.admission.shed_policy = serve::ShedPolicy::kRejectNew;
    else if (p == "drop-lowest") ecfg.admission.shed_policy = serve::ShedPolicy::kDropLowestPriority;
    else if (p == "degrade") ecfg.admission.shed_policy = serve::ShedPolicy::kDegradeEarlyExit;
    else check_arg(false, "--shed-policy must be reject|drop-lowest|degrade, got " + p);
  }
  ecfg.admission.degrade_queue_ratio = get_num(args, "degrade-queue", 0.0);
  ecfg.admission.shed_queue_ratio = get_num(args, "shed-queue", 0.0);
  ecfg.admission.degrade_kv_ratio = get_num(args, "degrade-kv", 0.0);
  ecfg.admission.shed_kv_ratio = get_num(args, "shed-kv", 0.0);
  ecfg.admission.degrade_tick_ms = get_num(args, "degrade-tick-ms", 0.0);
  ecfg.admission.shed_tick_ms = get_num(args, "shed-tick-ms", 0.0);
  ecfg.admission.tenant_rate = get_num(args, "tenant-rate", 0.0);
  ecfg.admission.tenant_burst = get_num(args, "tenant-burst", 4.0);
  ecfg.max_admission_retries = static_cast<int64_t>(get_num(args, "admission-retries", 0));
  ecfg.retry_backoff_ms = get_num(args, "retry-backoff-ms", 0.0);
  ecfg.watchdog_stall_ms = static_cast<int64_t>(get_num(args, "watchdog-ms", 0));

  // Decode ticks run up to max_batch stacked rows through each projection;
  // tune the kernels for that shape before the engine starts.
  apply_schedule_cache(args, *model, ecfg.max_batch);
  serve::ServeEngine engine(*model, ecfg);

  // Graceful drain on SIGINT/SIGTERM in both modes: finish or cancel
  // in-flight work, then fall through to the normal metrics/trace writes so
  // nothing lands on disk half-written.
  if (args.contains("listen")) {
    // HTTP front door (src/net): --listen host:port, requests over
    // POST /v1/completions with streamed token chunks. docs/SERVING.md has
    // the API; --requests/--metrics are JSONL-mode flags and ignored here.
    const auto [host, port] = net::split_host_port(args.at("listen"));
    net::ServerConfig scfg;
    scfg.host = host;
    scfg.port = port;
    scfg.max_connections = static_cast<int64_t>(get_num(args, "max-connections", 64));
    scfg.idle_timeout_ms = get_num(args, "idle-timeout-ms", 30000.0);
    net::HttpServer server(engine, scfg);
    net::install_drain_signals(server.wake_fd());
    std::cerr << "listening on " << host << ":" << server.port() << "\n";
    server.run();
    if (net::drain_signal() != 0) {
      std::cerr << "serve: drained after signal " << net::drain_signal() << "\n";
    }
    engine.shutdown();
  } else {
    net::install_drain_signals();

    // Requests in: one JSON object per line, default stdin ("-"). The whole
    // file is validated before anything is submitted, so a malformed line —
    // reported with its line number — never half-runs a batch.
    const std::string req_path = args.contains("requests") ? args.at("requests") : "-";
    std::ifstream file;
    if (req_path != "-") {
      file.open(req_path);
      check_arg(file.good(), "serve: cannot open requests file " + req_path);
    }
    std::istream& in = req_path == "-" ? std::cin : file;

    std::vector<serve::Request> reqs;
    std::string line;
    int64_t auto_id = 0;
    int64_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      try {
        serve::Request req = serve::parse_request_json(line);
        if (req.id == 0) req.id = ++auto_id;
        reqs.push_back(std::move(req));
      } catch (const std::exception& e) {
        std::cerr << "serve: " << (req_path == "-" ? "<stdin>" : req_path) << ":" << lineno
                  << ": " << e.what() << "\n";
        return 1;
      }
    }

    std::vector<int64_t> ids;
    std::vector<std::future<serve::Completion>> futs;
    ids.reserve(reqs.size());
    futs.reserve(reqs.size());
    for (auto& req : reqs) {
      ids.push_back(req.id);
      futs.push_back(engine.submit(std::move(req)));
    }

    std::unique_ptr<runtime::CsvWriter> csv;
    if (args.contains("metrics")) {
      csv = std::make_unique<runtime::CsvWriter>(
          args.at("metrics"), std::vector<std::string>{"id", "status", "prompt_tokens",
                                                       "output_tokens", "queue_ms", "ttft_ms",
                                                       "total_ms", "tokens_per_s", "kv_bytes"});
    }
    bool drained = false;
    for (auto& fut : futs) {
      // Poll rather than block so a drain signal cancels outstanding work
      // promptly; cancelled completions still print (status "cancelled").
      while (fut.wait_for(std::chrono::milliseconds(50)) != std::future_status::ready) {
        if (net::drain_signal() != 0 && !drained) {
          drained = true;
          for (const int64_t id : ids) engine.cancel(id);
        }
      }
      const serve::Completion c = fut.get();
      std::cout << serve::completion_to_json(c) << "\n";
      if (csv) {
        csv->row(std::vector<std::string>{
            std::to_string(c.id), serve::to_string(c.status),
            std::to_string(c.metrics.prompt_tokens), std::to_string(c.metrics.output_tokens),
            fmt(c.metrics.queue_wait_ms, 3), fmt(c.metrics.ttft_ms, 3),
            fmt(c.metrics.total_ms, 3), fmt(c.metrics.tokens_per_s, 1),
            std::to_string(c.metrics.kv_bytes)});
      }
    }
    if (net::drain_signal() != 0) {
      std::cerr << "serve: drained after signal " << net::drain_signal() << "\n";
    }
    engine.shutdown();
    if (csv) csv->close();
  }
  if (args.contains("metrics-out")) {
    engine.registry().write_json(args.at("metrics-out"));
    std::cerr << "wrote metrics to " << args.at("metrics-out") << "\n";
  }

  const serve::EngineMetrics m = engine.metrics();
  std::cerr << "served " << m.completed << " ok, " << m.rejected << " rejected, "
            << m.cancelled << " cancelled, " << m.timed_out << " timed out, " << m.shed
            << " shed, " << m.expired << " expired, " << m.failed << " failed ("
            << m.degraded << " degraded, " << m.admission_retries << " kv retries); "
            << m.tokens_generated << " tokens over " << m.ticks << " ticks (mean batch "
            << fmt(m.mean_batch_occupancy(), 2) << "), KV high water "
            << m.kv_high_water_bytes / 1024 << " KiB\n";
  return 0;
}

int usage() {
  std::cerr << "usage: edgellm_cli <pretrain|adapt|eval|generate|serve> [--flag value ...]\n"
               "  pretrain --out FILE [--iters N] [--layers L] [--dmodel D] [--seed S]\n"
               "  adapt    --in FILE --out FILE [--shift F] [--budget B] [--window W] [--iters N]\n"
               "           [--checkpoint-dir DIR] [--checkpoint-every N] [--checkpoint-keep K]\n"
               "           [--resume 0|1] [--metrics-out JSON] [--schedule-cache FILE]\n"
               "  eval     --in FILE [--shift F]\n"
               "  generate --in FILE [--tokens N] [--temp T] [--topk K] [--shift F]\n"
               "  serve    --in FILE [--requests FILE|-] [--threads N] [--batch B]\n"
               "           [--queue Q] [--kv-budget BYTES] [--quantize-kv 0|1]\n"
               "           [--kv-paged 0|1] [--kv-block-tokens N]\n"
               "           [--speculative-depth L] [--draft-k K]\n"
               "           [--metrics CSV] [--metrics-out JSON] [--schedule-cache FILE]\n"
               "           [--packed-weights 0|1]\n"
               "           [--shed-policy reject|drop-lowest|degrade]\n"
               "           [--degrade-queue F] [--shed-queue F] [--degrade-kv F] [--shed-kv F]\n"
               "           [--degrade-tick-ms MS] [--shed-tick-ms MS]\n"
               "           [--tenant-rate RPS] [--tenant-burst N]\n"
               "           [--admission-retries N] [--retry-backoff-ms MS] [--watchdog-ms MS]\n"
               "           [--listen host:port] [--max-connections N] [--idle-timeout-ms MS]\n"
               "serve --listen host:port serves HTTP instead of JSONL (port 0 = ephemeral,\n"
               "bound port printed to stderr): POST /v1/completions streams token chunks,\n"
               "GET /metrics (JSON or ?format=csv) and GET /healthz; SIGINT/SIGTERM drain\n"
               "gracefully in both modes (docs/SERVING.md)\n"
               "requests with \"exit\": \"speculative\" draft from an early-exit head and\n"
               "verify at full depth (greedy output byte-identical to \"final\");\n"
               "--speculative-depth/--draft-k set engine-wide defaults for requests that\n"
               "omit draft_depth/draft_k (docs/SERVING.md)\n"
               "serve overload policy (docs/ROBUSTNESS.md): thresholds are fractions of queue/\n"
               "KV capacity (or tick-latency ms) past which requests degrade to early exits or\n"
               "are shed; 0 (default) disables each signal and the engine behaves as before\n"
               "--schedule-cache FILE autotunes blocked-GEMM tile sizes per layer shape by\n"
               "timing the real kernels, persisting winners across runs (speed only — outputs\n"
               "are bitwise unchanged); --packed-weights 1 decodes against packed int4/int8\n"
               "weights directly (deployed integer numerics; see docs/PERFORMANCE.md)\n"
               "every subcommand also takes --compute-threads N (deterministic tensor\n"
               "backend; 0 = EDGELLM_NUM_THREADS or serial; outputs identical at any N),\n"
               "--simd auto|scalar|avx2|neon (SIMD kernel dispatch, mirrors EDGELLM_SIMD;\n"
               "outputs identical at any choice), --fast-math 0|1 (FMA multi-accumulator\n"
               "kernels: faster, not bitwise; see docs/PERFORMANCE.md),\n"
               "--trace-out FILE (Chrome trace-event JSON for chrome://tracing / Perfetto)\n"
               "and --trace-sample N (record every Nth kernel-family span; default 0 = off)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const auto args = parse_args(argc, argv, 2);
    // Global compute-thread knob for the deterministic tensor backend;
    // outputs are bitwise identical at any value (EDGELLM_NUM_THREADS is
    // the env-var equivalent).
    const int64_t ct = static_cast<int64_t>(get_num(args, "compute-threads", 0));
    check_arg(ct >= 0, "--compute-threads must be >= 0");
    if (ct > 0) parallel::set_num_threads(ct);
    // Global SIMD dispatch override, mirroring EDGELLM_SIMD (the flag wins
    // when both are given). The default deterministic kernels make this a
    // speed knob only; --fast-math opts into the non-bitwise FMA kernels.
    if (args.contains("simd")) {
      const std::string choice = args.at("simd");
      check_arg(simd::set_dispatch(choice),
                "--simd " + choice + " not available on this host (try auto|scalar" +
                    (simd::detected_isa() == simd::Isa::kScalar
                         ? std::string(")")
                         : "|" + std::string(simd::to_string(simd::detected_isa())) + ")"));
    }
    const bool fast_math = get_num(args, "fast-math", 0) != 0;
    ops::gemm::set_fast_math(fast_math);
    std::cerr << "simd: dispatch=" << simd::to_string(simd::active_isa())
              << " (detected " << simd::to_string(simd::detected_isa()) << ")"
              << (fast_math ? ", fast-math on" : "") << "\n";
    // Tracing knobs, global to the subcommand run (see docs/OBSERVABILITY.md).
    const int64_t sample = static_cast<int64_t>(get_num(args, "trace-sample", 0));
    check_arg(sample >= 0, "--trace-sample must be >= 0");
    const bool tracing = args.contains("trace-out");
    if (tracing) obs::Tracer::global().enable(sample);

    int rc = -1;
    if (cmd == "pretrain") rc = cmd_pretrain(args);
    else if (cmd == "adapt") rc = cmd_adapt(args);
    else if (cmd == "eval") rc = cmd_eval(args);
    else if (cmd == "generate") rc = cmd_generate(args);
    else if (cmd == "serve") rc = cmd_serve(args);
    if (rc < 0) return usage();
    if (tracing) {
      obs::Tracer::global().disable();
      obs::Tracer::global().write_chrome_trace(args.at("trace-out"));
      std::cerr << "wrote trace to " << args.at("trace-out") << "\n";
    }
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
