// Continual on-device adaptation — the scenario the paper's introduction
// motivates: the input distribution keeps drifting (new user, new app, new
// environment) and the model must keep up under edge constraints.
//
// A single Edge-LLM-compressed model adapts through a sequence of domain
// shifts; after each phase we report held-out quality on the current
// domain, demonstrating recovery after every shift.
//
// Build & run:  ./build/examples/continual_adaptation
#include <iostream>

#include "core/pipeline.hpp"
#include "core/voting.hpp"
#include "data/eval.hpp"
#include "runtime/table.hpp"

int main() {
  using namespace edgellm;
  using runtime::fmt;

  data::MarkovChain::Config dcfg;
  dcfg.vocab = 32;
  dcfg.order = 1;
  dcfg.branch = 4;
  dcfg.seed = 42;
  const data::MarkovChain base(dcfg);

  nn::ModelConfig mcfg;
  mcfg.vocab = 32;
  mcfg.d_model = 32;
  mcfg.n_layers = 6;
  mcfg.n_heads = 4;
  mcfg.max_seq = 32;
  mcfg.exit_layers = {2, 4, 6};

  std::cout << "pretraining base model...\n";
  Rng rng(7);
  auto model = core::pretrain_base_model(mcfg, base, 800, 8, 16, rng);

  // Compress once, up front, using base-domain calibration data.
  Rng calib_rng(31);
  std::vector<data::LmBatch> calib;
  for (int i = 0; i < 6; ++i) calib.push_back(data::sample_lm_batch(base, 8, 16, calib_rng));
  core::SensitivityConfig sens;
  const core::SensitivityProfile prof = core::analyze_sensitivity(*model, calib, sens);
  core::LucConfig luc;
  luc.target_effective_bits = 3.0;
  const core::LucPolicy policy = core::search_luc_policy(prof, sens, luc);
  core::apply_policy(*model, policy);
  std::cout << "LUC policy applied (avg " << fmt(policy.avg_effective_bits(), 2)
            << " effective bits)\n\n";

  // One long-lived tuner: optimizer state persists across domain shifts,
  // exactly like a deployed device.
  core::TunerConfig tcfg;
  tcfg.sampling = core::DepthSampling::kLossWeighted;
  tcfg.backprop_window = 2;
  tcfg.optim.lr = 1e-2f;
  core::AdaptiveLayerTuner tuner(*model, tcfg, Rng(99));

  runtime::TablePrinter table({8, 12, 14, 14, 12});
  table.row({"phase", "shift frac", "ppl before", "ppl after", "recovered"});
  table.rule();

  Rng data_rng(404);
  const float shifts[] = {0.3f, 0.6f, 0.9f};
  for (int phase = 0; phase < 3; ++phase) {
    const data::MarkovChain domain = base.shifted(shifts[phase], 1000 + phase);

    std::vector<data::LmBatch> eval_set;
    Rng eval_rng(700 + phase);
    for (int i = 0; i < 6; ++i) eval_set.push_back(data::sample_lm_batch(domain, 8, 16, eval_rng));

    const float before = data::lm_loss(*model, eval_set, mcfg.n_layers);
    for (int i = 0; i < 200; ++i) {
      tuner.step(data::sample_lm_batch(domain, 8, 16, data_rng));
    }
    core::ExitVoter voter(*model, {core::VotingMode::kCalibratedWeight, 0.5f});
    std::vector<data::LmBatch> vcalib;
    for (int i = 0; i < 3; ++i) vcalib.push_back(data::sample_lm_batch(domain, 8, 16, data_rng));
    voter.calibrate(vcalib);
    const float after = voter.voted_loss(eval_set);

    table.row({std::to_string(phase + 1), fmt(shifts[phase], 1),
               fmt(data::perplexity(before), 2), fmt(data::perplexity(after), 2),
               after < before ? "yes" : "no"});
  }

  std::cout << "\nEach phase shifts the domain further from pretraining; adaptation\n"
               "recovers perplexity every time while only ever touching a 2-layer\n"
               "backprop window of the compressed model.\n";
  return 0;
}
