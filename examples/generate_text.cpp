// On-device generation after adaptation: adapt a compressed model to a new
// domain, then sample continuations with the KV-cached incremental decoder
// and measure how "in-domain" the generations are — before vs after
// adaptation, at the final exit vs an early exit (cheaper decoding).
//
// Build & run:  ./build/examples/generate_text
#include <iostream>

#include "core/pipeline.hpp"
#include "data/eval.hpp"
#include "nn/decoder.hpp"
#include "runtime/table.hpp"

namespace {

using namespace edgellm;

// Fraction of generated transitions that land on the domain's preferred
// next tokens (the synthetic analogue of "on-topic" text).
double in_domain_rate(nn::CausalLm& model, const data::MarkovChain& domain, int64_t exit_layer,
                      uint64_t seed) {
  nn::IncrementalDecoder dec(model, exit_layer);
  nn::GenerateConfig gcfg;
  gcfg.max_new_tokens = 16;
  gcfg.temperature = 0.7f;
  Rng rng(seed);
  int64_t hits = 0, total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto prompt = domain.sample(4, rng);
    std::vector<int64_t> seq = prompt;
    const auto gen = dec.generate(prompt, gcfg, rng);
    seq.insert(seq.end(), gen.begin(), gen.end());
    for (size_t i = prompt.size(); i < seq.size(); ++i) {
      const std::vector<int64_t> ctx(seq.begin() + static_cast<int64_t>(i) - 1,
                                     seq.begin() + static_cast<int64_t>(i));
      if (domain.next_dist(ctx)[static_cast<size_t>(seq[i])] > 0.1f) ++hits;
      ++total;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

int main() {
  using runtime::fmt;

  data::MarkovChain::Config dcfg;
  dcfg.vocab = 32;
  dcfg.order = 1;
  dcfg.branch = 4;
  dcfg.seed = 42;
  const data::MarkovChain base(dcfg);
  const data::MarkovChain target = base.shifted(0.7f, 99);

  nn::ModelConfig mcfg;
  mcfg.vocab = 32;
  mcfg.d_model = 32;
  mcfg.n_layers = 6;
  mcfg.n_heads = 4;
  mcfg.max_seq = 32;
  mcfg.exit_layers = {2, 4, 6};

  std::cout << "pretraining base model...\n";
  Rng rng(7);
  auto model = core::pretrain_base_model(mcfg, base, 800, 8, 16, rng);

  std::cout << "in-domain rate BEFORE adaptation (target domain):\n";
  std::cout << "  final exit: " << fmt(in_domain_rate(*model, target, 6, 11), 3)
            << "   early exit (2 of 6 layers): " << fmt(in_domain_rate(*model, target, 2, 12), 3)
            << "\n\n";

  std::cout << "adapting with Edge-LLM (LUC 3-bit budget, window 2)...\n";
  core::PipelineConfig pcfg;
  pcfg.adaptation_iters = 250;
  pcfg.luc.target_effective_bits = 3.0;
  pcfg.tuner.backprop_window = 2;
  pcfg.tuner.optim.lr = 1e-2f;
  (void)core::run_pipeline(*model, target, pcfg);

  std::cout << "\nin-domain rate AFTER adaptation:\n";
  std::cout << "  final exit: " << fmt(in_domain_rate(*model, target, 6, 13), 3)
            << "   early exit (2 of 6 layers): " << fmt(in_domain_rate(*model, target, 2, 14), 3)
            << "\n\n";

  // Show one sampled stream plus the decoder's memory cost.
  nn::IncrementalDecoder dec(*model);
  Rng srng(21);
  const auto prompt = target.sample(4, srng);
  nn::GenerateConfig gcfg;
  gcfg.max_new_tokens = 20;
  gcfg.temperature = 0.7f;
  const auto gen = dec.generate(prompt, gcfg, srng);
  std::cout << "sample  prompt: ";
  for (int64_t t : prompt) std::cout << t << ' ';
  std::cout << "-> continuation: ";
  for (int64_t t : gen) std::cout << t << ' ';
  std::cout << "\nKV cache after generation: " << dec.kv_cache_bytes() / 1024 << " KiB for "
            << dec.position() << " positions\n";
  return 0;
}
