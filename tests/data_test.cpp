// Synthetic-corpus and task-generation tests.
#include <gtest/gtest.h>

#include <cmath>

#include "data/corpus.hpp"
#include "data/eval.hpp"
#include "data/tasks.hpp"
#include "tensor/ops.hpp"

namespace edgellm::data {
namespace {

MarkovChain::Config base_cfg() {
  MarkovChain::Config cfg;
  cfg.vocab = 32;
  cfg.order = 2;
  cfg.branch = 4;
  cfg.mass = 0.85f;
  cfg.seed = 11;
  return cfg;
}

TEST(Markov, DistSumsToOneAndIsDeterministic) {
  const MarkovChain chain(base_cfg());
  const std::vector<int64_t> ctx = {3, 7};
  const auto d1 = chain.next_dist(ctx);
  const auto d2 = chain.next_dist(ctx);
  EXPECT_EQ(d1, d2);
  double s = 0.0;
  int preferred = 0;
  for (float p : d1) {
    EXPECT_GT(p, 0.0f);
    s += p;
    if (p > 0.1f) ++preferred;
  }
  EXPECT_NEAR(s, 1.0, 1e-5);
  EXPECT_EQ(preferred, 4);  // branch preferred tokens carry the mass
}

TEST(Markov, ShortContextIsPadded) {
  const MarkovChain chain(base_cfg());
  const std::vector<int64_t> short_ctx = {7};
  const std::vector<int64_t> padded = {0, 7};
  EXPECT_EQ(chain.next_dist(short_ctx), chain.next_dist(padded));
}

TEST(Markov, SamplingFollowsPreferredTokens) {
  const MarkovChain chain(base_cfg());
  Rng rng(1);
  const auto stream = chain.sample(4000, rng);
  ASSERT_EQ(stream.size(), 4000u);
  // Empirically, ~85% of transitions should land on a preferred token.
  int64_t hits = 0, total = 0;
  for (size_t i = 2; i < stream.size(); ++i) {
    const std::vector<int64_t> ctx = {stream[i - 2], stream[i - 1]};
    const auto dist = chain.next_dist(ctx);
    if (dist[static_cast<size_t>(stream[i])] > 0.1f) ++hits;
    ++total;
  }
  const double frac = static_cast<double>(hits) / total;
  EXPECT_GT(frac, 0.80);
  EXPECT_LT(frac, 0.90);
}

TEST(Markov, EntropyRateMatchesConstruction) {
  const MarkovChain chain(base_cfg());
  Rng rng(2);
  const float h = chain.entropy_rate(2000, rng);
  // Construction: H = mass*log(branch/mass-ish) ... just sanity-band it
  // between a delta function (0) and uniform (log vocab).
  EXPECT_GT(h, 0.5f);
  EXPECT_LT(h, std::log(32.0f));
}

TEST(Markov, ShiftChangesSomeRowsOnly) {
  const MarkovChain base(base_cfg());
  const MarkovChain shifted = base.shifted(0.5f, 999);
  Rng rng(3);
  int changed = 0, total = 200;
  for (int i = 0; i < total; ++i) {
    const std::vector<int64_t> ctx = {rng.uniform_int(0, 31), rng.uniform_int(0, 31)};
    if (base.next_dist(ctx) != shifted.next_dist(ctx)) ++changed;
  }
  EXPECT_GT(changed, total / 4);      // a good fraction changed
  EXPECT_LT(changed, 3 * total / 4);  // but not all
  // Zero shift is identical.
  const MarkovChain same = base.shifted(0.0f, 999);
  for (int i = 0; i < 20; ++i) {
    const std::vector<int64_t> ctx = {rng.uniform_int(0, 31), rng.uniform_int(0, 31)};
    EXPECT_EQ(base.next_dist(ctx), same.next_dist(ctx));
  }
}

TEST(Markov, ConfigValidation) {
  auto cfg = base_cfg();
  cfg.branch = 32;
  EXPECT_THROW(MarkovChain{cfg}, std::invalid_argument);
  cfg = base_cfg();
  cfg.mass = 1.5f;
  EXPECT_THROW(MarkovChain{cfg}, std::invalid_argument);
  cfg = base_cfg();
  cfg.order = 0;
  EXPECT_THROW(MarkovChain{cfg}, std::invalid_argument);
}

TEST(Batches, TargetsAreShiftedInputs) {
  std::vector<int64_t> stream(50);
  for (size_t i = 0; i < stream.size(); ++i) stream[i] = static_cast<int64_t>(i);
  const auto batches = make_lm_batches(stream, 2, 4);
  ASSERT_FALSE(batches.empty());
  const LmBatch& b = batches[0];
  EXPECT_EQ(b.inputs.size(), 8u);
  for (size_t i = 0; i < b.inputs.size(); ++i) {
    EXPECT_EQ(b.targets[i], b.inputs[i] + 1);  // consecutive ints
  }
  EXPECT_THROW(make_lm_batches(std::vector<int64_t>(5, 0), 2, 4), std::invalid_argument);
}

TEST(Batches, SampleLmBatchShape) {
  const MarkovChain chain(base_cfg());
  Rng rng(4);
  const LmBatch b = sample_lm_batch(chain, 3, 8, rng);
  EXPECT_EQ(b.batch, 3);
  EXPECT_EQ(b.seq, 8);
  EXPECT_EQ(b.inputs.size(), 24u);
  EXPECT_EQ(b.targets.size(), 24u);
}

TEST(Mcq, GenerationShape) {
  const MarkovChain chain(base_cfg());
  Rng rng(5);
  McqConfig cfg;
  cfg.n_items = 10;
  cfg.n_choices = 4;
  const auto items = make_mcq_set(chain, cfg, rng);
  ASSERT_EQ(items.size(), 10u);
  for (const McqItem& it : items) {
    EXPECT_EQ(it.prompt.size(), static_cast<size_t>(cfg.prompt_len));
    EXPECT_EQ(it.choices.size(), 4u);
    EXPECT_GE(it.correct, 0);
    EXPECT_LT(it.correct, 4);
    for (const auto& c : it.choices) EXPECT_EQ(c.size(), static_cast<size_t>(cfg.cont_len));
  }
}

// An oracle that scores with the *true* chain distributions should get high
// MCQ accuracy — validates that the task is actually solvable.
TEST(Mcq, OracleScoresHigh) {
  const MarkovChain chain(base_cfg());
  Rng rng(6);
  McqConfig cfg;
  cfg.n_items = 60;
  const auto items = make_mcq_set(chain, cfg, rng);

  LogitsFn oracle = [&chain](const std::vector<int64_t>& tokens, int64_t seq) {
    Tensor logits({seq, chain.vocab()});
    for (int64_t p = 0; p < seq; ++p) {
      const int64_t lo = std::max<int64_t>(0, p - 1);
      const std::vector<int64_t> ctx(tokens.begin() + lo, tokens.begin() + p + 1);
      const auto dist = chain.next_dist(ctx);
      for (int64_t v = 0; v < chain.vocab(); ++v) {
        logits[p * chain.vocab() + v] = std::log(dist[static_cast<size_t>(v)] + 1e-9f);
      }
    }
    return logits;
  };
  const float acc = mcq_accuracy(oracle, items, chain.vocab());
  EXPECT_GT(acc, 0.85f);
}

// A uniform scorer is at chance.
TEST(Mcq, UniformScorerNearChance) {
  const MarkovChain chain(base_cfg());
  Rng rng(7);
  McqConfig cfg;
  cfg.n_items = 80;
  const auto items = make_mcq_set(chain, cfg, rng);
  LogitsFn uniform = [&chain](const std::vector<int64_t>&, int64_t seq) {
    return Tensor({seq, chain.vocab()}, 0.0f);
  };
  const float acc = mcq_accuracy(uniform, items, chain.vocab());
  EXPECT_LT(acc, 0.55f);
}

TEST(Mcq, ScoreContinuationUsesOnlyContinuationTokens) {
  const MarkovChain chain(base_cfg());
  // Logits that strongly prefer token 1 everywhere.
  LogitsFn fn = [&chain](const std::vector<int64_t>&, int64_t seq) {
    Tensor logits({seq, chain.vocab()}, 0.0f);
    for (int64_t p = 0; p < seq; ++p) logits[p * chain.vocab() + 1] = 10.0f;
    return logits;
  };
  const std::vector<int64_t> prompt = {2, 3};
  const float good = score_continuation(fn, prompt, {1, 1}, chain.vocab());
  const float bad = score_continuation(fn, prompt, {4, 4}, chain.vocab());
  EXPECT_GT(good, bad);
}

TEST(Eval, PerplexityIsExpLoss) { EXPECT_NEAR(perplexity(std::log(8.0f)), 8.0f, 1e-3f); }

}  // namespace
}  // namespace edgellm::data
