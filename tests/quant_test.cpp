#include <gtest/gtest.h>

#include <cmath>

#include "quant/quant.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"

namespace edgellm::quant {
namespace {

TEST(Quant, SpecValidation) {
  QuantSpec s;
  s.bits = 1;
  EXPECT_THROW(validate_spec(s), std::invalid_argument);
  s.bits = 17;
  EXPECT_THROW(validate_spec(s), std::invalid_argument);
  s.bits = 4;
  s.granularity = Granularity::kGrouped;
  s.group_size = 0;
  EXPECT_THROW(validate_spec(s), std::invalid_argument);
}

TEST(Quant, RoundTripBoundedError) {
  Rng rng(1);
  const Tensor w = randn({16, 32}, rng);
  QuantSpec s;
  s.bits = 8;
  s.granularity = Granularity::kPerRow;
  const Tensor deq = fake_quant(w, s);
  // Symmetric b-bit error is bounded by scale/2 = maxabs / (2^(b-1)-1) / 2.
  for (int64_t r = 0; r < 16; ++r) {
    float maxabs = 0.0f;
    for (int64_t c = 0; c < 32; ++c) maxabs = std::max(maxabs, std::fabs(w[r * 32 + c]));
    const float bound = maxabs / 127.0f * 0.5f + 1e-6f;
    for (int64_t c = 0; c < 32; ++c) {
      EXPECT_LE(std::fabs(deq[r * 32 + c] - w[r * 32 + c]), bound);
    }
  }
}

TEST(Quant, ZeroTensorSurvives) {
  const Tensor w({4, 4}, 0.0f);
  QuantSpec s;
  s.bits = 4;
  const Tensor deq = fake_quant(w, s);
  for (int64_t i = 0; i < deq.numel(); ++i) EXPECT_FLOAT_EQ(deq[i], 0.0f);
}

TEST(Quant, IdempotentOnQuantizedValues) {
  Rng rng(2);
  const Tensor w = randn({8, 8}, rng);
  QuantSpec s;
  s.bits = 4;
  const Tensor once = fake_quant(w, s);
  const Tensor twice = fake_quant(once, s);
  EXPECT_TRUE(once.allclose(twice, 1e-5f));
}

// Property: more bits never increase MSE (same granularity).
class BitsMonotone : public ::testing::TestWithParam<std::tuple<int, Granularity>> {};

TEST_P(BitsMonotone, MseDecreasesWithBits) {
  const auto [seed, gran] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const Tensor w = randn({12, 24}, rng);
  float prev = 1e9f;
  for (int bits : {2, 3, 4, 6, 8, 12}) {
    QuantSpec s;
    s.bits = bits;
    s.granularity = gran;
    const float m = quant_mse(w, s);
    EXPECT_LE(m, prev + 1e-9f) << "bits=" << bits;
    prev = m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndGranularities, BitsMonotone,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(Granularity::kPerTensor, Granularity::kPerRow,
                                         Granularity::kGrouped)));

TEST(Quant, FinerGranularityHelpsOutlierRows) {
  Rng rng(3);
  Tensor w = randn({8, 16}, rng);
  // Give one row a huge outlier: per-tensor scaling must get much worse.
  w.at(3, 5) = 80.0f;
  QuantSpec per_tensor;
  per_tensor.bits = 4;
  per_tensor.granularity = Granularity::kPerTensor;
  QuantSpec per_row = per_tensor;
  per_row.granularity = Granularity::kPerRow;
  EXPECT_LT(quant_mse(w, per_row), quant_mse(w, per_tensor));
}

TEST(Quant, GroupedBeatsPerRowOnIntraRowOutliers) {
  Rng rng(4);
  Tensor w = randn({4, 64}, rng);
  for (int r = 0; r < 4; ++r) w.at(r, 0) = 40.0f;  // one outlier per row
  QuantSpec row;
  row.bits = 3;
  row.granularity = Granularity::kPerRow;
  QuantSpec grouped = row;
  grouped.granularity = Granularity::kGrouped;
  grouped.group_size = 16;
  EXPECT_LT(quant_mse(w, grouped), quant_mse(w, row));
}

TEST(Quant, AsymmetricHelpsSkewedData) {
  Rng rng(5);
  Tensor w({4, 32});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = rng.uniform(0.0f, 1.0f);  // all positive
  QuantSpec sym;
  sym.bits = 3;
  sym.symmetric = true;
  QuantSpec asym = sym;
  asym.symmetric = false;
  EXPECT_LT(quant_mse(w, asym), quant_mse(w, sym));
}

TEST(Quant, AsymmetricRepresentsZeroExactly) {
  Tensor w({1, 6}, std::vector<float>{0.0f, 1.0f, 2.0f, 3.0f, 4.0f, 5.0f});
  QuantSpec s;
  s.bits = 3;
  s.symmetric = false;
  const Tensor deq = fake_quant(w, s);
  EXPECT_NEAR(deq[0], 0.0f, 1e-6f);
}

TEST(Quant, StorageBytesAccounting) {
  const Tensor w({16, 64});
  QuantSpec s;
  s.bits = 4;
  s.granularity = Granularity::kPerRow;
  // payload 16*64*4/8 = 512 bytes + 16 fp16 scales = 32 bytes.
  EXPECT_DOUBLE_EQ(storage_bytes(w, s), 512.0 + 32.0);
  EXPECT_DOUBLE_EQ(fp16_storage_bytes(w), 2048.0);

  s.granularity = Granularity::kGrouped;
  s.group_size = 16;
  // 64 groups of 16 -> 4 per row * 16 rows = 64 scales.
  EXPECT_DOUBLE_EQ(storage_bytes(w, s), 512.0 + 2.0 * 64.0);

  s.symmetric = false;
  EXPECT_DOUBLE_EQ(storage_bytes(w, s), 512.0 + 4.0 * 64.0);
}

TEST(Quant, SqnrIncreasesWithBits) {
  Rng rng(6);
  const Tensor w = randn({32, 32}, rng);
  QuantSpec s;
  float prev = -1.0f;
  for (int bits : {2, 4, 8}) {
    s.bits = bits;
    const float db = quant_sqnr_db(w, s);
    EXPECT_GT(db, prev);
    prev = db;
  }
  EXPECT_GT(prev, 30.0f);  // 8-bit per-row should be comfortably clean
}

TEST(Quant, PayloadBitsReported) {
  Rng rng(7);
  const Tensor w = randn({8, 8}, rng);
  QuantSpec s;
  s.bits = 3;
  const QuantResult r = quantize_dequantize(w, s);
  EXPECT_EQ(r.payload_bits, 64 * 3);
  EXPECT_EQ(static_cast<int64_t>(r.scales.size()), 8);
  EXPECT_TRUE(r.zero_points.empty());
}

TEST(Quant, EmptyTensorThrows) {
  const Tensor w({0, 4});
  QuantSpec s;
  EXPECT_THROW(quantize_dequantize(w, s), std::invalid_argument);
}

}  // namespace
}  // namespace edgellm::quant
