// Exit self-distillation: early exits move toward the final exit's
// predictions when the KL term is enabled.
#include <gtest/gtest.h>

#include <cmath>

#include "core/tuner.hpp"
#include "data/eval.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace edgellm::core {
namespace {

using edgellm::testing::tiny_config;

data::MarkovChain domain() {
  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  dc.seed = 5;
  return data::MarkovChain(dc);
}

// Mean KL(final exit || early exit) over a probe batch.
float exit_divergence(nn::CausalLm& model, const data::LmBatch& b, int64_t early) {
  const Tensor tf = model.forward_eval(b.inputs, b.batch, b.seq, model.exit_layers().back());
  const Tensor te = model.forward_eval(b.inputs, b.batch, b.seq, early);
  const Tensor pf = ops::softmax_lastdim(tf);
  const Tensor le = ops::log_softmax_lastdim(te);
  const Tensor lf = ops::log_softmax_lastdim(tf);
  double kl = 0.0;
  for (int64_t i = 0; i < pf.numel(); ++i) {
    kl += static_cast<double>(pf[i]) * (lf[i] - le[i]);
  }
  return static_cast<float>(kl / pf.dim(0));
}

float run_and_measure(float distill_weight) {
  Rng rng(3);
  nn::CausalLm model(tiny_config(), rng);
  TunerConfig cfg;
  cfg.sampling = DepthSampling::kCyclic;
  cfg.backprop_window = 2;
  cfg.optim.lr = 1e-2f;
  cfg.distill_weight = distill_weight;
  AdaptiveLayerTuner tuner(model, cfg, Rng(7));
  const data::MarkovChain d = domain();
  Rng drng(11);
  for (int i = 0; i < 90; ++i) tuner.step(data::sample_lm_batch(d, 4, 12, drng));
  Rng probe_rng(12);
  const auto probe = data::sample_lm_batch(d, 4, 12, probe_rng);
  return exit_divergence(model, probe, 1);
}

TEST(Distill, PullsEarlyExitTowardFinal) {
  const float without = run_and_measure(0.0f);
  const float with = run_and_measure(2.0f);
  EXPECT_LT(with, without);
}

TEST(Distill, ReportsSoftLossOnlyForEarlyExits) {
  Rng rng(4);
  nn::CausalLm model(tiny_config(), rng);
  TunerConfig cfg;
  cfg.sampling = DepthSampling::kCyclic;  // exits 1, 2, 3 in order
  cfg.backprop_window = 1;
  cfg.optim.lr = 1e-3f;
  cfg.distill_weight = 1.0f;
  AdaptiveLayerTuner tuner(model, cfg, Rng(8));
  const data::MarkovChain d = domain();
  Rng drng(13);

  const auto s1 = tuner.step(data::sample_lm_batch(d, 2, 8, drng));  // exit 1
  EXPECT_EQ(s1.exit_layer, 1);
  EXPECT_GT(s1.distill_loss, 0.0f);
  const auto s2 = tuner.step(data::sample_lm_batch(d, 2, 8, drng));  // exit 2
  EXPECT_GT(s2.distill_loss, 0.0f);
  const auto s3 = tuner.step(data::sample_lm_batch(d, 2, 8, drng));  // exit 3 (final)
  EXPECT_EQ(s3.exit_layer, 3);
  EXPECT_FLOAT_EQ(s3.distill_loss, 0.0f);
}

TEST(Distill, DisabledByDefault) {
  Rng rng(5);
  nn::CausalLm model(tiny_config(), rng);
  TunerConfig cfg;
  cfg.sampling = DepthSampling::kUniform;
  AdaptiveLayerTuner tuner(model, cfg, Rng(9));
  const data::MarkovChain d = domain();
  Rng drng(14);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(tuner.step(data::sample_lm_batch(d, 2, 8, drng)).distill_loss, 0.0f);
  }
}

}  // namespace
}  // namespace edgellm::core
