// Grouped-query attention: correctness (gradient-checked), KV-cache
// savings, decoder agreement, workload shrinkage.
#include <gtest/gtest.h>

#include "hw/workload.hpp"
#include "nn/decoder.hpp"
#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "runtime/simulator.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace edgellm::nn {
namespace {

using edgellm::testing::check_param_grad;

ModelConfig gqa_config() {
  ModelConfig cfg = edgellm::testing::tiny_config();
  cfg.n_heads = 4;
  cfg.n_kv_heads = 2;
  return cfg;
}

float weighted_sum(const Tensor& y, const Tensor& w) {
  float l = 0.0f;
  for (int64_t i = 0; i < y.numel(); ++i) l += y[i] * w[i];
  return l;
}

TEST(Gqa, RejectsNonDividingKvHeads) {
  Rng rng(1);
  EXPECT_THROW(MultiHeadAttention("a", 12, 4, rng, 3), std::invalid_argument);
}

TEST(Gqa, ProjectionShapesShrink) {
  Rng rng(2);
  MultiHeadAttention attn("a", 16, 4, rng, 2);
  EXPECT_EQ(attn.kv_dim(), 8);
  EXPECT_EQ(attn.k_proj().out_features(), 8);
  EXPECT_EQ(attn.v_proj().out_features(), 8);
  EXPECT_EQ(attn.q_proj().out_features(), 16);
  const Tensor y = attn.forward(Tensor({2, 3, 16}, 0.5f));
  EXPECT_EQ(y.shape(), (Shape{2, 3, 16}));
}

TEST(Gqa, GradCheckAllProjections) {
  Rng rng(3);
  MultiHeadAttention attn("a", 8, 4, rng, 2);
  Tensor x = randn({1, 4, 8}, rng);
  const Tensor w = randn({1, 4, 8}, rng);
  auto loss_fn = [&] {
    attn.clear_cache();
    return weighted_sum(attn.forward(x), w);
  };
  loss_fn();
  const Tensor gx = attn.backward(w);
  check_param_grad(attn.q_proj().weight(), loss_fn, 8);
  check_param_grad(attn.k_proj().weight(), loss_fn, 8);
  check_param_grad(attn.v_proj().weight(), loss_fn, 8);
  check_param_grad(attn.out_proj().weight(), loss_fn, 8);

  const float h = 1e-3f;
  for (int64_t i = 0; i < x.numel(); i += 5) {
    const float orig = x[i];
    x[i] = orig + h;
    const float lp = loss_fn();
    x[i] = orig - h;
    const float lm = loss_fn();
    x[i] = orig;
    EXPECT_NEAR(gx[i], (lp - lm) / (2 * h), 2e-2f) << "input idx " << i;
  }
}

TEST(Gqa, FullModelTrainsEndToEnd) {
  Rng rng(4);
  CausalLm model(gqa_config(), rng);
  const std::vector<int64_t> toks = {1, 2, 3, 4, 5, 6, 7, 8};
  const ForwardPlan plan = ForwardPlan::full(3);
  model.zero_grad();
  const Tensor logits = model.forward(toks, 2, 4, plan);
  const CrossEntropyResult ce = cross_entropy(logits, toks);
  model.backward(ce.grad_logits);
  // K projection grads must be non-zero (GQA reduction path works).
  for (Param* p : model.params()) {
    if (p->name == "block0.attn.k.weight") {
      EXPECT_EQ(p->value.shape(), (Shape{8, 16}));  // kv_dim x d_model
      EXPECT_GT(ops::l2_norm(p->grad), 0.0f);
    }
  }
}

TEST(Gqa, FewerParamsThanMha) {
  Rng rng(5);
  CausalLm mha(edgellm::testing::tiny_config(), rng);
  Rng rng2(5);
  CausalLm gqa(gqa_config(), rng2);
  EXPECT_LT(gqa.param_count(), mha.param_count());
}

TEST(Gqa, DecoderMatchesBatchedForward) {
  Rng rng(6);
  CausalLm model(gqa_config(), rng);
  std::vector<int64_t> toks = {3, 1, 4, 1, 5, 9, 2, 6};
  const Tensor ref = model.forward_eval(toks, 1, 8, 3);
  IncrementalDecoder dec(model);
  dec.prime(toks);
  for (int64_t v = 0; v < model.config().vocab; ++v) {
    EXPECT_NEAR(dec.logits()[v], ref[7 * model.config().vocab + v], 1e-4f);
  }
}

TEST(Gqa, KvCacheHalved) {
  Rng rng(7);
  CausalLm mha(edgellm::testing::tiny_config(), rng);
  Rng rng2(7);
  CausalLm gqa(gqa_config(), rng2);
  IncrementalDecoder dm(mha);
  IncrementalDecoder dg(gqa);
  dm.prime({1, 2, 3, 4});
  dg.prime({1, 2, 3, 4});
  EXPECT_EQ(dg.kv_cache_bytes() * 2, dm.kv_cache_bytes());
}

TEST(Gqa, WorkloadKvGemmsShrink) {
  const ModelConfig cfg = gqa_config();
  const hw::LayerWorkload w = hw::block_forward_workload(cfg, 0, {}, 2, 8);
  for (const hw::GemmWorkload& g : w.gemms) {
    if (g.name == "block0.k" || g.name == "block0.v") {
      EXPECT_EQ(g.n, cfg.kv_dim());
    }
    if (g.name == "block0.q" || g.name == "block0.o") {
      EXPECT_EQ(g.n, cfg.d_model);
    }
  }
}

TEST(Gqa, SimulatorParamCountMatchesModel) {
  Rng rng(8);
  const ModelConfig cfg = gqa_config();
  CausalLm model(cfg, rng);
  int64_t block0 = 0;
  for (Param* p : model.params()) {
    if (p->name.rfind("block0.", 0) == 0) block0 += p->numel();
  }
  EXPECT_DOUBLE_EQ(edgellm::runtime::block_param_count(cfg), static_cast<double>(block0));
}

TEST(Gqa, ConfigCheckpointRoundTrip) {
  const std::string path = ::testing::TempDir() + "/edgellm_gqa.bin";
  Rng rng(9);
  CausalLm a(gqa_config(), rng);
  save_model_with_config(a, path);
  auto b = load_model_with_config(path);
  EXPECT_EQ(b->config().kv_heads(), 2);
  std::vector<int64_t> toks = {1, 2, 3, 4};
  EXPECT_TRUE(a.forward_eval(toks, 1, 4, 3).allclose(b->forward_eval(toks, 1, 4, 3), 1e-6f));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace edgellm::nn
