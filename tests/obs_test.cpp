// The observability subsystem: metrics registry (counters, gauges,
// histograms with percentile readout), the scoped-span tracer with its
// Chrome trace-event export, and the end-to-end instrumentation of the
// serving engine and the adaptation pipeline.
//
// Tracer tests share the process-global singleton, so every test that
// records starts from Tracer::global().clear() and leaves the tracer
// disabled on exit.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <stack>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace edgellm::obs {
namespace {

using edgellm::testing::JsonParser;
using edgellm::testing::JsonValue;
using edgellm::testing::tiny_config;
using edgellm::testing::validate_chrome_trace;

// --- Counter / Gauge --------------------------------------------------------

TEST(Counter, AddsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Gauge, SetAddAndHighWater) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.max_of(5);
  EXPECT_EQ(g.value(), 7);  // 5 does not exceed 7
  g.max_of(19);
  EXPECT_EQ(g.value(), 19);
}

// --- Histogram --------------------------------------------------------------

// Bucket index for `v` under `bounds`, mirroring the implementation's
// contract (first bound >= v; overflow past the end).
size_t ref_bucket(const std::vector<double>& bounds, double v) {
  return static_cast<size_t>(std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

TEST(Histogram, CountSumMeanAndBuckets) {
  Histogram h({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.5, 1.7, 3.0, 100.0}) h.observe(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.5 + 1.7 + 3.0 + 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), h.sum() / 5.0);
  ASSERT_EQ(h.n_buckets(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 1);  // overflow
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

// Percentile property: for any sample set, percentile(q) must land inside
// the bucket that contains the exact order-statistic a sorted reference
// yields — the histogram can blur within a bucket but never across one.
TEST(Histogram, PercentileWithinBucketOfSortedReference) {
  const std::vector<double> bounds = Histogram::default_time_bounds_ms();
  Histogram h(bounds);
  std::vector<double> samples;
  uint64_t x = 0x2545F4914F6CDD1Dull;  // deterministic xorshift stream
  for (int i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    // Spread samples over ~6 decades, like real latencies.
    const double v = std::pow(10.0, -3.0 + 6.0 * static_cast<double>(x % 100000) / 100000.0);
    samples.push_back(v);
    h.observe(v);
  }
  std::sort(samples.begin(), samples.end());
  for (double q : {0.01, 0.25, 0.50, 0.90, 0.95, 0.99}) {
    const auto rank = static_cast<size_t>(
        std::max<int64_t>(1, static_cast<int64_t>(std::ceil(q * static_cast<double>(samples.size())))));
    const double exact = samples[rank - 1];
    const size_t b = ref_bucket(bounds, exact);
    ASSERT_LT(b, bounds.size()) << "sample range must stay inside the finite buckets";
    const double lo = b == 0 ? 0.0 : bounds[b - 1];
    const double hi = bounds[b];
    const double est = h.percentile(q);
    EXPECT_GE(est, lo) << "q=" << q;
    EXPECT_LE(est, hi) << "q=" << q;
  }
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

  // Everything in the overflow bucket: percentile pins to the last bound.
  Histogram over({1.0, 2.0});
  over.observe(50.0);
  over.observe(60.0);
  EXPECT_DOUBLE_EQ(over.percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(over.percentile(0.99), 2.0);
}

void observe_all(Histogram& h, const std::vector<double>& vs) {
  for (double v : vs) h.observe(v);
}

std::vector<int64_t> bucket_vector(const Histogram& h) {
  std::vector<int64_t> out;
  for (size_t b = 0; b < h.n_buckets(); ++b) out.push_back(h.bucket_count(b));
  return out;
}

// Merge associativity/commutativity over bucket counts: any grouping of
// the same sample sets yields identical bucket counts, count, and sum.
TEST(Histogram, MergeIsAssociativeAndCommutative) {
  const std::vector<double> bounds = {0.5, 1.0, 4.0, 16.0};
  const std::vector<double> a = {0.1, 0.7, 3.0, 20.0, 100.0};
  const std::vector<double> b = {0.6, 0.6, 5.0};
  const std::vector<double> c = {15.0, 0.2};

  // (a + b) + c
  Histogram left(bounds);
  observe_all(left, a);
  {
    Histogram hb(bounds);
    observe_all(hb, b);
    left.merge(hb);
    Histogram hc(bounds);
    observe_all(hc, c);
    left.merge(hc);
  }
  // a + (b + c), built by merging into b's histogram first.
  Histogram right(bounds);
  observe_all(right, b);
  {
    Histogram hc(bounds);
    observe_all(hc, c);
    right.merge(hc);
    Histogram ha(bounds);
    observe_all(ha, a);
    right.merge(ha);
  }
  EXPECT_EQ(bucket_vector(left), bucket_vector(right));
  EXPECT_EQ(left.count(), right.count());
  EXPECT_DOUBLE_EQ(left.sum(), right.sum());

  Histogram other({1.0, 2.0});
  EXPECT_THROW(left.merge(other), std::invalid_argument);
}

// --- Registry ---------------------------------------------------------------

TEST(Registry, HandlesAreStableAndNamed) {
  Registry reg;
  Counter& c = reg.counter("a");
  EXPECT_EQ(&c, &reg.counter("a"));
  EXPECT_NE(&c, &reg.counter("b"));
  Histogram& h = reg.histogram("lat", {1.0, 2.0});
  EXPECT_EQ(&h, &reg.histogram("lat"));  // bounds of a re-request are ignored
  EXPECT_EQ(h.bounds().size(), 2u);
}

// 8 threads hammer one counter, one gauge and one histogram; totals must
// come out exact — the lock-free instruments may not lose updates.
TEST(Registry, ConcurrentUpdatesAreExact) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  Counter& c = reg.counter("hits");
  Gauge& g = reg.gauge("hw");
  Histogram& h = reg.histogram("vals", {1.0, 2.0, 4.0, 8.0});

  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.add();
        g.max_of(t * kIters + i);
        h.observe(static_cast<double>(i % 10));
      }
    });
  }
  for (auto& t : ts) t.join();

  EXPECT_EQ(c.value(), int64_t{kThreads} * kIters);
  EXPECT_EQ(g.value(), int64_t{kThreads - 1} * kIters + (kIters - 1));
  EXPECT_EQ(h.count(), int64_t{kThreads} * kIters);
  // Per thread: 2000 each of 0..9 -> sum = 45 * 2000 per thread.
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * 45.0 * (kIters / 10));
  int64_t in_buckets = 0;
  for (size_t b = 0; b < h.n_buckets(); ++b) in_buckets += h.bucket_count(b);
  EXPECT_EQ(in_buckets, h.count());
}

TEST(Registry, SnapshotJsonAndCsvParse) {
  Registry reg;
  reg.counter("reqs").add(3);
  reg.gauge("depth").set(-2);
  Histogram& h = reg.histogram("lat_ms", {1.0, 10.0});
  h.observe(0.5);
  h.observe(25.0);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("reqs"), 3);
  EXPECT_EQ(snap.gauge("depth"), -2);
  ASSERT_NE(snap.histogram("lat_ms"), nullptr);
  EXPECT_EQ(snap.histogram("lat_ms")->count, 2);
  EXPECT_EQ(snap.counter("no_such"), 0);
  EXPECT_EQ(snap.histogram("no_such"), nullptr);

  const JsonValue doc = JsonParser::parse(snap.to_json());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("reqs").number, 3.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("depth").number, -2.0);
  const JsonValue& hj = doc.at("histograms").at("lat_ms");
  EXPECT_DOUBLE_EQ(hj.at("count").number, 2.0);
  ASSERT_EQ(hj.at("buckets").array.size(), 3u);  // 2 bounds + overflow
  EXPECT_DOUBLE_EQ(hj.at("buckets").array[2].array[0].number, -1.0);  // overflow marker

  const std::string csv = snap.to_csv();
  EXPECT_NE(csv.find("kind,name,value,count,sum,p50,p95,p99"), std::string::npos);
  EXPECT_NE(csv.find("counter,reqs,3"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat_ms"), std::string::npos);
}

// --- Tracer -----------------------------------------------------------------

TEST(Tracer, DisabledRecordsNothing) {
  Tracer& t = Tracer::global();
  t.disable();
  t.clear();
  {
    ScopedSpan s("outer");
    KernelSpan k("kernel/x");
    t.counter("c", 7);
  }
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped_events(), 0);
}

// Per-tid stack check: events within one thread must nest like brackets,
// and end names must match the span open at the top of the stack.
void check_nesting(const std::vector<TraceEvent>& events) {
  std::map<int32_t, std::stack<std::string>> stacks;
  for (const TraceEvent& e : events) {
    if (e.ph == 'B') {
      stacks[e.tid].push(e.name);
    } else if (e.ph == 'E') {
      ASSERT_FALSE(stacks[e.tid].empty()) << "end without begin: " << e.name;
      EXPECT_EQ(stacks[e.tid].top(), e.name);
      stacks[e.tid].pop();
    }
  }
  for (const auto& [tid, st] : stacks) {
    EXPECT_TRUE(st.empty()) << "unclosed span on tid " << tid;
  }
}

TEST(Tracer, SpansNestAndAttributeToThreads) {
  Tracer& t = Tracer::global();
  t.clear();
  t.enable(/*kernel_sample=*/1);

  {
    ScopedSpan outer("outer");
    { ScopedSpan inner("inner"); }
    { KernelSpan k("kernel/k"); }
  }
  std::thread worker([&] { ScopedSpan w("worker_span"); });
  worker.join();
  t.disable();

  const std::vector<TraceEvent> events = t.events();
  ASSERT_EQ(events.size(), 8u);  // 3 spans on main + 1 on worker, B+E each
  check_nesting(events);

  int32_t main_tid = -1, worker_tid = -1;
  for (const TraceEvent& e : events) {
    if (std::string(e.name) == "outer") main_tid = e.tid;
    if (std::string(e.name) == "worker_span") worker_tid = e.tid;
  }
  EXPECT_NE(main_tid, -1);
  EXPECT_NE(worker_tid, -1);
  EXPECT_NE(main_tid, worker_tid);

  // Timestamps are sorted and inner nests strictly inside outer.
  for (size_t i = 1; i < events.size(); ++i) EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
}

TEST(Tracer, KernelSamplingRecordsEveryNth) {
  Tracer& t = Tracer::global();
  t.clear();
  t.enable(/*kernel_sample=*/4);
  // Fresh thread => fresh per-thread sampling tick, so the count is exact.
  std::thread worker([&] {
    for (int i = 0; i < 16; ++i) KernelSpan k("kernel/sampled");
  });
  worker.join();
  t.disable();
  EXPECT_EQ(t.events().size(), 8u);  // 16 calls / 4 = 4 spans, B+E each
}

TEST(Tracer, ChromeTraceJsonValidates) {
  Tracer& t = Tracer::global();
  t.clear();
  t.enable();
  {
    ScopedSpan a("phase_a");
    t.counter("queue_depth", 3);
  }
  t.disable();

  const std::string json = t.chrome_trace_json();
  const JsonValue doc = validate_chrome_trace(json);
  ASSERT_EQ(doc.at("traceEvents").array.size(), t.events().size());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  bool saw_counter = false;
  for (const JsonValue& e : doc.at("traceEvents").array) {
    if (e.at("ph").string == "C") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(e.at("args").at("value").number, 3.0);
    }
  }
  EXPECT_TRUE(saw_counter);
}

// --- end-to-end: served batch + tuning pipeline under tracing ---------------

serve::Request greedy_request(int64_t id, std::vector<int64_t> prompt, int64_t n_new) {
  serve::Request r;
  r.id = id;
  r.prompt = std::move(prompt);
  r.max_new_tokens = n_new;
  r.temperature = 0.0f;
  return r;
}

TEST(ObsEndToEnd, ServedBatchHasMatchedTickSpansAndDriftFreeMetrics) {
  Tracer& t = Tracer::global();
  t.clear();
  t.enable(/*kernel_sample=*/0);  // structural spans only

  const nn::ModelConfig cfg = tiny_config();
  Rng rng(40);
  nn::CausalLm model(cfg, rng);

  serve::EngineConfig ecfg;
  ecfg.max_batch = 4;
  ecfg.threads = 2;
  serve::ServeEngine engine(model, ecfg);

  // Stage all four requests while paused so the batch forms deterministically.
  engine.pause();
  std::vector<std::future<serve::Completion>> futs;
  for (int64_t i = 0; i < 4; ++i) {
    std::vector<int64_t> prompt(4);
    for (int64_t j = 0; j < 4; ++j) prompt[static_cast<size_t>(j)] = (j * 5 + 2 + i * 3) % cfg.vocab;
    futs.push_back(engine.submit(greedy_request(i, std::move(prompt), 6)));
  }
  engine.resume();
  for (auto& f : futs) EXPECT_EQ(f.get().status, serve::RequestStatus::kOk);
  engine.shutdown();
  t.disable();

  // Every scheduler tick, decode fan-out and decode step opened and closed.
  const std::vector<TraceEvent> events = t.events();
  std::map<std::string, std::pair<int64_t, int64_t>> be;  // name -> (#B, #E)
  for (const TraceEvent& e : events) {
    if (e.ph == 'B') ++be[e.name].first;
    if (e.ph == 'E') ++be[e.name].second;
  }
  const serve::EngineMetrics m = engine.metrics();
  EXPECT_EQ(be["serve/tick"].first, m.ticks);
  EXPECT_EQ(be["serve/tick"].second, m.ticks);
  EXPECT_EQ(be["serve/decode"].first, m.ticks);
  EXPECT_EQ(be["serve/decode"].second, m.ticks);
  EXPECT_GT(be["decode/step"].first, 0);
  EXPECT_EQ(be["decode/step"].first, be["decode/step"].second);
  check_nesting(events);

  // All 4 requests decoded together: the batch really was staged.
  EXPECT_EQ(m.completed, 4);
  EXPECT_DOUBLE_EQ(m.mean_batch_occupancy(), 4.0);

  // Differential no-drift check: the registry snapshot and the EngineMetrics
  // rollup expose the same instruments and must agree exactly.
  const MetricsSnapshot snap = engine.registry().snapshot();
  EXPECT_EQ(snap.counter("serve/submitted"), m.submitted);
  EXPECT_EQ(snap.counter("serve/completed"), m.completed);
  EXPECT_EQ(snap.counter("serve/rejected"), m.rejected);
  EXPECT_EQ(snap.counter("serve/tokens_generated"), m.tokens_generated);
  ASSERT_NE(snap.histogram("serve/batch_size"), nullptr);
  EXPECT_EQ(snap.histogram("serve/batch_size")->count, m.ticks);
  EXPECT_DOUBLE_EQ(snap.histogram("serve/batch_size")->sum, m.occupancy_sum);
  EXPECT_EQ(snap.gauge("kv/high_water_bytes"), m.kv_high_water_bytes);
  EXPECT_EQ(snap.counter("kv/acquired"), 4);
  EXPECT_EQ(snap.counter("kv/released"), 4);
  // A second snapshot after shutdown must be identical (nothing drifts).
  const MetricsSnapshot again = engine.registry().snapshot();
  EXPECT_EQ(again.counter("serve/completed"), snap.counter("serve/completed"));
  EXPECT_EQ(again.histogram("serve/batch_size")->count,
            snap.histogram("serve/batch_size")->count);

  // The exported trace passes the schema validator with the same events.
  const JsonValue doc = validate_chrome_trace(t.chrome_trace_json());
  EXPECT_EQ(doc.at("traceEvents").array.size(), events.size());
  EXPECT_EQ(t.dropped_events(), 0);
}

TEST(ObsEndToEnd, PipelineStepsAreTracedAndCounted) {
  Tracer& t = Tracer::global();
  t.clear();
  t.enable();

  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  dc.mass = 0.85f;
  dc.seed = 5;
  const data::MarkovChain domain(dc);

  Rng rng(31);
  nn::CausalLm model(tiny_config(), rng);
  Registry reg;
  core::PipelineConfig pcfg;
  pcfg.adaptation_iters = 5;
  pcfg.batch = 2;
  pcfg.seq = 8;
  pcfg.calib_batches = 2;
  pcfg.eval_batches = 2;
  pcfg.apply_compression = false;
  pcfg.metrics = &reg;
  const core::PipelineResult res = core::run_pipeline(model, domain, pcfg);
  t.disable();

  ASSERT_EQ(res.loss_curve.size(), 5u);

  // Exactly one tuner/step span pair per adaptation iteration, nested
  // inside a single pipeline/adapt span; eval phase opened and closed.
  const std::vector<TraceEvent> events = t.events();
  std::map<std::string, std::pair<int64_t, int64_t>> be;
  for (const TraceEvent& e : events) {
    if (e.ph == 'B') ++be[e.name].first;
    if (e.ph == 'E') ++be[e.name].second;
  }
  EXPECT_EQ(be["tuner/step"].first, 5);
  EXPECT_EQ(be["tuner/step"].second, 5);
  EXPECT_EQ(be["pipeline/adapt"].first, 1);
  EXPECT_EQ(be["pipeline/adapt"].second, 1);
  EXPECT_EQ(be["pipeline/eval"].first, 1);
  EXPECT_EQ(be["pipeline/eval"].second, 1);
  EXPECT_EQ(be["pipeline/compress"].first, 0);  // compression disabled
  check_nesting(events);

  // Metrics registry agrees with the run's own accounting.
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("tuner/steps"), 5);
  EXPECT_EQ(snap.counter("tuner/skipped_steps"), res.skipped_steps);
  EXPECT_EQ(snap.counter("tuner/rollbacks"), res.rollbacks);
  ASSERT_NE(snap.histogram("tuner/step_ms"), nullptr);
  EXPECT_EQ(snap.histogram("tuner/step_ms")->count, 5);
  ASSERT_NE(snap.histogram("tuner/exit_depth"), nullptr);
  EXPECT_EQ(snap.histogram("tuner/exit_depth")->count, 5);
  // Sampled exits stay inside the registered exit range.
  const nn::ModelConfig mc = tiny_config();
  EXPECT_GE(snap.histogram("tuner/exit_depth")->p50, 0.0);
  EXPECT_LE(snap.histogram("tuner/exit_depth")->p99, static_cast<double>(mc.n_layers));
}

// With tracing disabled the instrumented kernels must not record anything;
// the bench sweep (BENCH_obs.json) quantifies the <2% overhead claim, this
// test pins the functional half of it.
TEST(ObsEndToEnd, DisabledTracingLeavesKernelsSilent) {
  Tracer& t = Tracer::global();
  t.disable();
  t.clear();

  Tensor a = Tensor::zeros({8, 8});
  Tensor b = Tensor::zeros({8, 8});
  for (int64_t i = 0; i < 64; ++i) {
    a[i] = static_cast<float>(i % 7) * 0.25f;
    b[i] = static_cast<float>(i % 5) * 0.5f;
  }
  for (int i = 0; i < 50; ++i) (void)ops::matmul(a, b);
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped_events(), 0);
}

// Overhead regression guard: a disabled KernelSpan is one relaxed atomic
// load, so a million of them must be effectively free. The bound is absurdly
// generous (1 s ≈ 1 µs per probe) on purpose — it only trips if someone
// puts a lock, allocation, or syscall on the disabled path, and never flakes
// on a loaded CI box.
TEST(ObsEndToEnd, DisabledSpanProbeStaysCheap) {
  Tracer& t = Tracer::global();
  t.disable();
  t.clear();

  constexpr int kProbes = 1'000'000;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kProbes; ++i) {
    const KernelSpan span("kernel/probe");
  }
  const double sec = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(sec, 1.0) << kProbes << " disabled probes took " << sec << " s";
  EXPECT_TRUE(t.events().empty());
}

}  // namespace
}  // namespace edgellm::obs
