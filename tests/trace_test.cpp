// CSV trace writer tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "runtime/trace.hpp"
#include "test_util.hpp"

namespace edgellm::runtime {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(Trace, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/edgellm_trace.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.row(std::vector<std::string>{"1", "x"});
    w.row(std::vector<double>{2.5, 3.0});
    EXPECT_EQ(w.rows_written(), 2);
  }
  EXPECT_EQ(slurp(path), "a,b\n1,x\n2.5,3\n");
  std::remove(path.c_str());
}

TEST(Trace, EscapesSpecialCharacters) {
  const std::string path = ::testing::TempDir() + "/edgellm_trace2.csv";
  {
    CsvWriter w(path, {"name"});
    w.row(std::vector<std::string>{"has,comma"});
    w.row(std::vector<std::string>{"has\"quote"});
  }
  EXPECT_EQ(slurp(path), "name\n\"has,comma\"\n\"has\"\"quote\"\n");
  std::remove(path.c_str());
}

TEST(Trace, RejectsWrongArity) {
  const std::string path = ::testing::TempDir() + "/edgellm_trace3.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.row(std::vector<std::string>{"only-one"}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Trace, RejectsUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/x.csv", {"a"}), std::runtime_error);
}

TEST(Trace, SurfacesWriteErrorsOnTheFailingRow) {
  // /dev/full accepts the open but fails every write with ENOSPC; rows are
  // flushed eagerly, so the failure must surface as a throw (from the header
  // write in the constructor or the first row), never silently.
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full not available";
  EXPECT_THROW(
      {
        CsvWriter w("/dev/full", {"a"});
        w.row(std::vector<std::string>{"1"});
      },
      std::runtime_error);
}

TEST(Trace, CloseReportsFailureAndIsIdempotent) {
  const std::string path = ::testing::TempDir() + "/edgellm_trace4.csv";
  CsvWriter w(path, {"a"});
  w.row(std::vector<std::string>{"1"});
  EXPECT_NO_THROW(w.close());
  EXPECT_NO_THROW(w.close());  // already closed: no-op
  EXPECT_EQ(slurp(path), "a\n1\n");
  std::remove(path.c_str());
}

TEST(Trace, LossCurveRoundTrip) {
  const std::string path = ::testing::TempDir() + "/edgellm_loss.csv";
  write_loss_curve(path, {3.0f, 2.5f, 2.0f});
  const std::string content = slurp(path);
  EXPECT_NE(content.find("iteration,loss"), std::string::npos);
  EXPECT_NE(content.find("2,2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, MethodReportsCsv) {
  const std::string path = ::testing::TempDir() + "/edgellm_methods.csv";
  const nn::ModelConfig cfg = edgellm::testing::tiny_config();
  SimulatorConfig sim;
  sim.batch = 2;
  sim.seq = 8;
  const MethodReport rep = simulate_method(cfg, vanilla_method(cfg), sim);
  write_method_reports(path, {rep});
  const std::string content = slurp(path);
  EXPECT_NE(content.find("vanilla"), std::string::npos);
  EXPECT_NE(content.find("peak_memory_bytes"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace edgellm::runtime
