// Error-path coverage: every public API must reject malformed input with
// std::invalid_argument (API misuse) rather than corrupting state.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "data/eval.hpp"
#include "data/template_lang.hpp"
#include "hw/search.hpp"
#include "nn/decoder.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace edgellm {
namespace {

using edgellm::testing::tiny_config;

TEST(ErrorPaths, TensorOps) {
  EXPECT_THROW(ops::bmm(Tensor({2, 3, 4}), Tensor({3, 4, 5})), std::invalid_argument);
  EXPECT_THROW(ops::bmm(Tensor({2, 3}), Tensor({2, 3, 4})), std::invalid_argument);
  EXPECT_THROW(ops::add(Tensor({2}), Tensor({3})), std::invalid_argument);
  EXPECT_THROW(ops::add_bias(Tensor({2, 3}), Tensor({2, 2})), std::invalid_argument);
  EXPECT_THROW(ops::mean(Tensor({0})), std::invalid_argument);
  EXPECT_THROW(ops::transpose2d(Tensor({2, 3, 4})), std::invalid_argument);
  EXPECT_THROW(ops::softmax_lastdim(Tensor({2, 0})), std::invalid_argument);
}

TEST(ErrorPaths, ModuleMisuse) {
  Rng rng(1);
  nn::Linear lin("l", 4, 4, false, rng);
  // Backward before forward.
  EXPECT_THROW(lin.backward(Tensor({2, 4})), std::invalid_argument);
  // LoRA with invalid rank/alpha.
  EXPECT_THROW(lin.enable_lora(0, 1.0f, rng), std::invalid_argument);
  EXPECT_THROW(lin.enable_lora(8, 1.0f, rng), std::invalid_argument);
  EXPECT_THROW(lin.enable_lora(2, 0.0f, rng), std::invalid_argument);
  // Explicit mask must be binary and shape-matched.
  EXPECT_THROW(lin.set_prune_mask(Tensor({4, 4}, 0.5f)), std::invalid_argument);
  EXPECT_THROW(lin.set_prune_mask(Tensor({2, 2}, 1.0f)), std::invalid_argument);

  nn::RmsNorm norm("n", 4);
  EXPECT_THROW(norm.backward(Tensor({2, 4})), std::invalid_argument);
  EXPECT_THROW(nn::RmsNorm("n2", 0), std::invalid_argument);

  EXPECT_THROW(nn::MultiHeadAttention("a", 10, 4, rng), std::invalid_argument);
  EXPECT_THROW(nn::Embedding("e", 0, 4, rng), std::invalid_argument);
}

TEST(ErrorPaths, ModelConfig) {
  Rng rng(2);
  nn::ModelConfig cfg = tiny_config();
  cfg.n_layers = 0;
  EXPECT_THROW(nn::CausalLm(cfg, rng), std::invalid_argument);
  cfg = tiny_config();
  cfg.vocab = 0;
  EXPECT_THROW(nn::CausalLm(cfg, rng), std::invalid_argument);
}

TEST(ErrorPaths, TunerAndVoterConfig) {
  Rng rng(3);
  nn::CausalLm model(tiny_config(), rng);
  core::TunerConfig bad;
  bad.clip_norm = 0.0f;
  EXPECT_THROW(core::AdaptiveLayerTuner(model, bad, Rng(1)), std::invalid_argument);
  bad = core::TunerConfig{};
  bad.loss_ema = 1.5f;
  EXPECT_THROW(core::AdaptiveLayerTuner(model, bad, Rng(1)), std::invalid_argument);

  EXPECT_THROW(core::ExitVoter(model, {core::VotingMode::kCalibratedWeight, 0.0f}),
               std::invalid_argument);
  core::ExitVoter voter(model, {core::VotingMode::kCalibratedWeight, 1.0f});
  EXPECT_THROW(voter.calibrate({}), std::invalid_argument);
  EXPECT_THROW(voter.voted_loss({}), std::invalid_argument);
}

TEST(ErrorPaths, PipelineConfig) {
  Rng rng(4);
  nn::CausalLm model(tiny_config(), rng);
  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  const data::MarkovChain domain(dc);
  core::PipelineConfig cfg;
  cfg.adaptation_iters = 0;
  EXPECT_THROW(core::run_pipeline(model, domain, cfg), std::invalid_argument);
}

TEST(ErrorPaths, HwApi) {
  const hw::DeviceModel dev = hw::default_edge_device();
  hw::GemmWorkload g;
  g.m = 0;
  g.n = 4;
  g.k = 4;
  hw::Schedule s;
  EXPECT_THROW(hw::evaluate_schedule(dev, g, s, dev.sram_bytes), std::invalid_argument);
  g.m = 4;
  s.tile_m = 0;
  EXPECT_THROW(hw::evaluate_schedule(dev, g, s, dev.sram_bytes), std::invalid_argument);

  hw::SearchConfig empty;
  empty.tile_candidates.clear();
  EXPECT_THROW(hw::search_gemm(dev, g, dev.sram_bytes, empty), std::invalid_argument);
  EXPECT_THROW(hw::schedule_iteration(dev, {}, hw::SearchConfig{}), std::invalid_argument);
  EXPECT_THROW(hw::schedule_iteration_naive(dev, {}), std::invalid_argument);
  EXPECT_THROW(dev.effective_mac_fraction(1.0f, false), std::invalid_argument);
  EXPECT_THROW(dev.mac_energy_pj(1), std::invalid_argument);
}

TEST(ErrorPaths, DecoderAndData) {
  Rng rng(5);
  nn::CausalLm model(tiny_config(), rng);
  nn::IncrementalDecoder dec(model);
  EXPECT_THROW(dec.prime({}), std::invalid_argument);
  EXPECT_THROW(dec.step(1), std::invalid_argument);  // before prime
  dec.prime({1});
  EXPECT_THROW(dec.step(-1), std::invalid_argument);
  EXPECT_THROW(dec.step(1000), std::invalid_argument);

  nn::GenerateConfig gcfg;
  gcfg.max_new_tokens = 0;
  Rng srng(6);
  EXPECT_THROW(dec.generate({1}, gcfg, srng), std::invalid_argument);
  EXPECT_THROW(nn::sample_token(Tensor({2, 3}), nn::GenerateConfig{}, srng),
               std::invalid_argument);

  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  const data::MarkovChain chain(dc);
  Rng drng(7);
  EXPECT_THROW(chain.sample(0, drng), std::invalid_argument);
  EXPECT_THROW(data::make_mcq_set(chain, {.n_items = 0}, drng), std::invalid_argument);

  data::TemplateLanguage::Config tc;
  const data::TemplateLanguage lang(tc);
  EXPECT_THROW(lang.sample(0, drng), std::invalid_argument);
  EXPECT_THROW(lang.make_cloze_set(5, 100, drng), std::invalid_argument);
}

TEST(ErrorPaths, SensitivityAndLuc) {
  Rng rng(8);
  nn::CausalLm model(tiny_config(), rng);
  core::SensitivityConfig cfg;
  EXPECT_THROW(core::analyze_sensitivity(model, {}, cfg), std::invalid_argument);
  cfg.bit_candidates.clear();
  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  const data::MarkovChain domain(dc);
  Rng drng(9);
  std::vector<data::LmBatch> calib = {data::sample_lm_batch(domain, 2, 8, drng)};
  EXPECT_THROW(core::analyze_sensitivity(model, calib, cfg), std::invalid_argument);

  core::SensitivityProfile empty;
  EXPECT_THROW(core::search_luc_policy(empty, core::SensitivityConfig{}, core::LucConfig{}),
               std::invalid_argument);
  EXPECT_THROW(core::uniform_policy(0, core::SensitivityConfig{}, 3.0),
               std::invalid_argument);
  core::LucPolicy p;
  EXPECT_THROW(p.avg_effective_bits(), std::invalid_argument);
}

}  // namespace
}  // namespace edgellm
