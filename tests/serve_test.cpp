// The serving runtime: pooled KV caches under a byte budget, the batched
// decode tick, the continuous-batching scheduler, and the multi-threaded
// engine end to end. The load-bearing invariant throughout: served output
// must match what a single IncrementalDecoder would have produced.
#include <gtest/gtest.h>

#include <chrono>
#include <future>

#include "core/voting.hpp"
#include "serve/engine.hpp"
#include "test_util.hpp"

namespace edgellm::serve {
namespace {

using edgellm::testing::engine_cfg;
using edgellm::testing::greedy_request;
using edgellm::testing::pool_cfg;
using edgellm::testing::reference_greedy;
using edgellm::testing::seq_tokens;
using edgellm::testing::tiny_config;

// --- KvCache ----------------------------------------------------------------

TEST(KvCache, BytesMatchPerPositionFormula) {
  nn::KvCache fp(3, 16, /*quantize=*/false);
  nn::KvCache q(3, 16, /*quantize=*/true);
  std::vector<float> row(16, 0.5f);
  for (int64_t p = 0; p < 4; ++p) {
    for (int64_t li = 0; li < 3; ++li) {
      fp.append(li, row.data(), row.data());
      q.append(li, row.data(), row.data());
    }
  }
  EXPECT_EQ(fp.bytes(), 4 * nn::KvCache::bytes_per_position(3, 16, false));
  EXPECT_EQ(q.bytes(), 4 * nn::KvCache::bytes_per_position(3, 16, true));
  // int8 payload + one fp32 scale per row vs fp32 payload: 16+4 vs 64.
  EXPECT_EQ(nn::KvCache::bytes_per_position(3, 16, true) * 16,
            nn::KvCache::bytes_per_position(3, 16, false) * 5);
  EXPECT_EQ(fp.positions(0), 4);
  EXPECT_EQ(q.positions(2), 4);
}

TEST(KvCache, QuantizedRoundTripIsClose) {
  nn::KvCache q(1, 8, /*quantize=*/true);
  const std::vector<float> k = {1.0f, -2.0f, 0.25f, 0.0f, 3.0f, -0.5f, 2.0f, -1.5f};
  const std::vector<float> v = {0.1f, 0.2f, -0.3f, 0.4f, -0.5f, 0.6f, -0.7f, 0.8f};
  q.append(0, k.data(), v.data());
  std::vector<float> out(8);
  q.load_k(0, 0, out.data());
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(out[i], k[i], 3.0f / 127.0f) << i;
  q.load_v(0, 0, out.data());
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(out[i], v[i], 0.8f / 127.0f) << i;
}

// --- KvCachePool ------------------------------------------------------------

TEST(KvCachePool, AcquireReleaseReuse) {
  KvCachePool pool(pool_cfg(2, /*budget=*/0));
  const int64_t a = pool.acquire(8, 3);
  const int64_t b = pool.acquire(8, 3);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.slots_in_use(), 2);
  EXPECT_EQ(pool.acquire(8, 3), -1);  // no free slot

  std::vector<float> row(16, 1.0f);
  pool.slot(a).append(0, row.data(), row.data());
  EXPECT_EQ(pool.bytes_in_use(), 0);  // cached accounting lags until a sync
  EXPECT_GT(pool.sync_live_bytes(), 0);
  EXPECT_EQ(pool.bytes_in_use(), pool.sync_live_bytes());

  pool.release(a);
  EXPECT_EQ(pool.slots_in_use(), 1);
  EXPECT_THROW(pool.slot(a), std::invalid_argument);  // released slots are dead
  const int64_t c = pool.acquire(4, 3);
  ASSERT_GE(c, 0);
  EXPECT_EQ(pool.slot(c).positions(0), 0);  // reused storage starts empty
}

TEST(KvCachePool, ByteBudgetGatesAdmission) {
  const int64_t per_seq = 8 * nn::KvCache::bytes_per_position(3, 16, false);
  KvCachePool pool(pool_cfg(4, /*budget=*/2 * per_seq));
  EXPECT_EQ(pool.projected_bytes(8, 3), per_seq);
  const int64_t a = pool.acquire(8, 3);
  const int64_t b = pool.acquire(8, 3);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_EQ(pool.committed_bytes(), 2 * per_seq);
  EXPECT_EQ(pool.acquire(1, 1), -1);  // budget exhausted despite free slots
  pool.release(b);
  EXPECT_GE(pool.acquire(8, 3), 0);  // released bytes return to the budget
}

TEST(KvCachePool, HighWaterTracksLiveBytes) {
  KvCachePool pool(pool_cfg(2, 0));
  const int64_t a = pool.acquire(4, 1);
  std::vector<float> row(16, 1.0f);
  pool.slot(a).append(0, row.data(), row.data());
  pool.slot(a).append(0, row.data(), row.data());
  const int64_t live = pool.sync_live_bytes();
  EXPECT_EQ(live, 2 * nn::KvCache::bytes_per_position(1, 16, false));
  EXPECT_EQ(pool.bytes_in_use(), live);
  pool.release(a);
  EXPECT_EQ(pool.bytes_in_use(), 0);  // release drops the slot's contribution
  EXPECT_EQ(pool.high_water_bytes(), live);  // mark survives the release
}

// --- batched decode ---------------------------------------------------------

// A batched tick must be bitwise identical to single-sequence decode: both
// go through the same per-row kernels in the same order.
TEST(BatchedDecode, IdenticalToSingleSequenceDecode) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(31);
  nn::CausalLm model(cfg, rng);
  model.set_eval();

  const std::vector<std::vector<int64_t>> prompts = {
      seq_tokens(6, cfg.vocab, 0), seq_tokens(6, cfg.vocab, 7), seq_tokens(6, cfg.vocab, 13)};

  // Reference: each sequence decoded alone.
  std::vector<std::vector<Tensor>> ref;
  for (const auto& p : prompts) {
    nn::KvCache cache(cfg.n_layers, cfg.kv_dim(), false);
    std::vector<Tensor> logits;
    for (size_t t = 0; t < p.size(); ++t) {
      logits.push_back(
          nn::decode_step(model, cache, static_cast<int64_t>(t), p[t], /*exit_layer=*/0));
    }
    ref.push_back(std::move(logits));
  }

  // Batched: all three advance together.
  std::vector<nn::KvCache> caches(3);
  for (auto& c : caches) c.configure(cfg.n_layers, cfg.kv_dim(), false);
  for (size_t t = 0; t < 6; ++t) {
    std::vector<nn::BatchedSeq> seqs(3);
    for (size_t s = 0; s < 3; ++s) {
      seqs[s].cache = &caches[s];
      seqs[s].position = static_cast<int64_t>(t);
      seqs[s].token = prompts[s][t];
    }
    nn::batched_decode_step(model, seqs);
    for (size_t s = 0; s < 3; ++s) {
      ASSERT_EQ(seqs[s].logits.size(), 1u);
      const Tensor& got = seqs[s].logits[0];
      const Tensor& want = ref[s][t];
      ASSERT_EQ(got.numel(), want.numel());
      for (int64_t v = 0; v < got.numel(); ++v) {
        ASSERT_EQ(got[v], want[v]) << "seq " << s << " pos " << t << " vocab " << v;
      }
    }
  }
}

// A weight cache built against a frozen model must not change a single bit
// of the decode — including when compression makes the effective weight
// non-trivial, and when a LoRA layer forces the per-layer fallback.
TEST(BatchedDecode, WeightCacheIsBitwiseIdentical) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(47);
  nn::CausalLm model(cfg, rng);
  quant::QuantSpec q;
  q.bits = 8;
  model.blocks()[0]->set_compression(q, std::nullopt);
  Rng lrng(3);
  model.blocks()[1]->attention().q_proj().enable_lora(2, 4.0f, lrng);
  model.set_eval();

  nn::DecodeWeightCache wc(model);
  EXPECT_TRUE(wc.built());
  EXPECT_GT(wc.bytes(), 0);
  // LoRA layers stay uncached so their adapter path still runs.
  EXPECT_EQ(wc.find(&model.blocks()[1]->attention().q_proj()), nullptr);
  EXPECT_NE(wc.find(&model.blocks()[0]->attention().q_proj()), nullptr);

  const std::vector<int64_t> prompt = seq_tokens(5, cfg.vocab, 3);
  nn::KvCache plain(cfg.n_layers, cfg.kv_dim(), false);
  nn::KvCache cached(cfg.n_layers, cfg.kv_dim(), false);
  for (size_t t = 0; t < prompt.size(); ++t) {
    nn::BatchedSeq a;
    a.cache = &plain;
    a.position = static_cast<int64_t>(t);
    a.token = prompt[t];
    a.all_exits = true;
    nn::BatchedSeq b = a;
    b.cache = &cached;
    nn::batched_decode_step(model, std::span<nn::BatchedSeq>(&a, 1));
    nn::batched_decode_step(model, std::span<nn::BatchedSeq>(&b, 1), &wc);
    ASSERT_EQ(a.logits.size(), b.logits.size());
    for (size_t e = 0; e < a.logits.size(); ++e) {
      for (int64_t v = 0; v < a.logits[e].numel(); ++v) {
        ASSERT_EQ(a.logits[e][v], b.logits[e][v]) << "pos " << t << " exit " << e << " v " << v;
      }
    }
  }
}

// Mixed exits in one batch: an early-exit sequence rides along with full
// depth ones and each matches the no-cache eval path.
TEST(BatchedDecode, MixedExitDepthsMatchForwardEval) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(32);
  nn::CausalLm model(cfg, rng);
  model.set_eval();
  const auto toks = seq_tokens(5, cfg.vocab);

  std::vector<nn::KvCache> caches(3);
  caches[0].configure(cfg.n_layers, cfg.kv_dim(), false);  // final exit
  caches[1].configure(2, cfg.kv_dim(), false);             // early exit at depth 2
  caches[2].configure(cfg.n_layers, cfg.kv_dim(), false);  // all exits (voted)

  std::vector<std::vector<Tensor>> got(3);
  for (size_t t = 0; t < toks.size(); ++t) {
    std::vector<nn::BatchedSeq> seqs(3);
    for (size_t s = 0; s < 3; ++s) {
      seqs[s].cache = &caches[s];
      seqs[s].position = static_cast<int64_t>(t);
      seqs[s].token = toks[t];
    }
    seqs[1].exit_layer = 2;
    seqs[2].all_exits = true;
    nn::batched_decode_step(model, seqs);
    for (size_t s = 0; s < 3; ++s) got[s].push_back(std::move(seqs[s].logits.back()));
  }

  const int64_t T = static_cast<int64_t>(toks.size());
  const Tensor ref_final = model.forward_eval(toks, 1, T, cfg.n_layers);
  const Tensor ref_early = model.forward_eval(toks, 1, T, 2);
  for (int64_t t = 0; t < T; ++t) {
    for (int64_t v = 0; v < cfg.vocab; ++v) {
      EXPECT_NEAR(got[0][static_cast<size_t>(t)][v], ref_final[t * cfg.vocab + v], 1e-4f);
      EXPECT_NEAR(got[1][static_cast<size_t>(t)][v], ref_early[t * cfg.vocab + v], 1e-4f);
      // all_exits returns exits ascending; .back() is the final exit.
      EXPECT_NEAR(got[2][static_cast<size_t>(t)][v], ref_final[t * cfg.vocab + v], 1e-4f);
    }
  }
}

TEST(BatchedDecode, AllExitsMatchForwardAllExits) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(33);
  nn::CausalLm model(cfg, rng);
  model.set_eval();
  const auto toks = seq_tokens(4, cfg.vocab);
  const int64_t T = static_cast<int64_t>(toks.size());

  nn::KvCache cache(cfg.n_layers, cfg.kv_dim(), false);
  std::vector<Tensor> last;
  for (int64_t t = 0; t < T; ++t) {
    last = nn::decode_step_all_exits(model, cache, t, toks[static_cast<size_t>(t)]);
  }
  const std::vector<Tensor> ref = model.forward_all_exits(toks, 1, T);
  ASSERT_EQ(last.size(), ref.size());
  for (size_t e = 0; e < ref.size(); ++e) {
    for (int64_t v = 0; v < cfg.vocab; ++v) {
      EXPECT_NEAR(last[e][v], ref[e][(T - 1) * cfg.vocab + v], 1e-4f) << "exit " << e;
    }
  }
}

TEST(BatchedDecode, RequiresEvalModeAndValidState) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(34);
  nn::CausalLm model(cfg, rng);
  model.set_eval();
  nn::KvCache cache(cfg.n_layers, cfg.kv_dim(), false);

  std::vector<nn::BatchedSeq> seqs(1);
  seqs[0].token = 1;
  EXPECT_THROW(nn::batched_decode_step(model, seqs), std::invalid_argument);  // null cache

  seqs[0].cache = &cache;
  seqs[0].position = 3;  // cache holds 0 positions
  EXPECT_THROW(nn::batched_decode_step(model, seqs), std::invalid_argument);

  seqs[0].position = 0;
  seqs[0].token = cfg.vocab;  // out of range
  EXPECT_THROW(nn::batched_decode_step(model, seqs), std::invalid_argument);

  nn::KvCache shallow(1, cfg.kv_dim(), false);  // too shallow for the final exit
  seqs[0].token = 1;
  seqs[0].cache = &shallow;
  EXPECT_THROW(nn::batched_decode_step(model, seqs), std::invalid_argument);
}

// --- engine end to end ------------------------------------------------------

TEST(ServeEngine, BatchedGreedyMatchesSequentialReference) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(40);
  nn::CausalLm model(cfg, rng);

  std::vector<std::vector<int64_t>> prompts;
  for (int64_t i = 0; i < 5; ++i) prompts.push_back(seq_tokens(4, cfg.vocab, i * 3));
  std::vector<std::vector<int64_t>> want;
  for (const auto& p : prompts) want.push_back(reference_greedy(model, p, 6));

  ServeEngine engine(model, engine_cfg(/*threads=*/1));
  // Stage every request while the scheduler is parked: all five are
  // admitted into one batch on resume, so the occupancy assertion below is
  // deterministic instead of racing the loop's first ticks.
  engine.pause();
  std::vector<std::future<Completion>> futs;
  for (size_t i = 0; i < prompts.size(); ++i) {
    futs.push_back(engine.submit(greedy_request(static_cast<int64_t>(i), prompts[i], 6)));
  }
  engine.resume();
  for (size_t i = 0; i < futs.size(); ++i) {
    const Completion c = futs[i].get();
    EXPECT_EQ(c.status, RequestStatus::kOk);
    EXPECT_EQ(c.id, static_cast<int64_t>(i));
    EXPECT_EQ(c.tokens, want[i]) << "request " << i;
    EXPECT_EQ(c.metrics.output_tokens, 6);
    EXPECT_GT(c.metrics.kv_bytes, 0);
  }
  engine.shutdown();
  const EngineMetrics m = engine.metrics();
  EXPECT_EQ(m.completed, 5);
  EXPECT_EQ(m.tokens_generated, 5 * 6);
  // Identical-length requests staged together retire together: every tick
  // ran the full batch of five.
  EXPECT_DOUBLE_EQ(m.mean_batch_occupancy(), 5.0);
}

TEST(ServeEngine, MultiThreadedMatchesSingleThreaded) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(41);
  nn::CausalLm model(cfg, rng);

  std::vector<std::vector<int64_t>> prompts;
  for (int64_t i = 0; i < 6; ++i) prompts.push_back(seq_tokens(3 + i % 3, cfg.vocab, i));
  std::vector<std::vector<int64_t>> want;
  for (const auto& p : prompts) want.push_back(reference_greedy(model, p, 5));

  ServeEngine engine(model, engine_cfg(/*threads=*/4));
  std::vector<std::future<Completion>> futs;
  for (size_t i = 0; i < prompts.size(); ++i) {
    futs.push_back(engine.submit(greedy_request(static_cast<int64_t>(i), prompts[i], 5)));
  }
  for (size_t i = 0; i < futs.size(); ++i) {
    const Completion c = futs[i].get();
    EXPECT_EQ(c.status, RequestStatus::kOk);
    EXPECT_EQ(c.tokens, want[i]) << "request " << i;
  }
}

TEST(ServeEngine, MixedExitPoliciesInOneBatch) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(42);
  nn::CausalLm model(cfg, rng);
  const auto prompt = seq_tokens(4, cfg.vocab);

  const auto want_final = reference_greedy(model, prompt, 5);
  const auto want_early = reference_greedy(model, prompt, 5, /*exit_layer=*/2);

  ServeEngine engine(model, engine_cfg(1));
  auto f_final = engine.submit(greedy_request(1, prompt, 5));
  auto f_early = engine.submit(greedy_request(2, prompt, 5, ExitPolicy::kFixedEarly, 2));
  auto f_voted = engine.submit(greedy_request(3, prompt, 5, ExitPolicy::kVoted));

  EXPECT_EQ(f_final.get().tokens, want_final);
  EXPECT_EQ(f_early.get().tokens, want_early);

  // Voted reference: decode with all exits, combine with the engine's
  // defaults (uniform weights, zero losses), greedy-pick.
  model.set_eval();
  const size_t n_exits = model.exit_layers().size();
  const std::vector<float> w(n_exits, 1.0f / static_cast<float>(n_exits));
  const std::vector<float> losses(n_exits, 0.0f);
  nn::KvCache cache(cfg.n_layers, cfg.kv_dim(), false);
  std::vector<int64_t> want_voted;
  int64_t pos = 0;
  std::vector<Tensor> exits;
  for (size_t t = 0; t < prompt.size(); ++t) {
    exits = nn::decode_step_all_exits(model, cache, pos++, prompt[t]);
  }
  core::VoterConfig vcfg;  // engine default
  for (int64_t i = 0; i < 5; ++i) {
    const Tensor voted =
        core::combine_exit_logits(exits, w, losses, vcfg).reshape({cfg.vocab});
    nn::GenerateConfig g;
    g.temperature = 0.0f;
    Rng r(0);
    const int64_t tok = nn::sample_token(voted, g, r);
    want_voted.push_back(tok);
    if (i + 1 < 5) exits = nn::decode_step_all_exits(model, cache, pos++, tok);
  }
  EXPECT_EQ(f_voted.get().tokens, want_voted);
}

TEST(ServeEngine, KvBudgetSerialisesAdmissionWithoutStarvation) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(43);
  nn::CausalLm model(cfg, rng);
  const auto prompt = seq_tokens(4, cfg.vocab);
  const auto want = reference_greedy(model, prompt, 4);

  // Budget fits exactly one sequence's projection: requests must decode
  // one at a time, all still completing.
  const int64_t projected =
      (4 + 4) * nn::KvCache::bytes_per_position(cfg.n_layers, cfg.kv_dim(), false);
  EngineConfig ecfg = engine_cfg(1);
  ecfg.kv_byte_budget = projected;
  ServeEngine engine(model, ecfg);

  std::vector<std::future<Completion>> futs;
  for (int64_t i = 0; i < 3; ++i) futs.push_back(engine.submit(greedy_request(i, prompt, 4)));
  for (auto& f : futs) {
    const Completion c = f.get();
    EXPECT_EQ(c.status, RequestStatus::kOk);
    EXPECT_EQ(c.tokens, want);
  }
  engine.shutdown();
  const EngineMetrics m = engine.metrics();
  EXPECT_EQ(m.completed, 3);
  EXPECT_LE(m.kv_high_water_bytes, projected);  // never over budget
  EXPECT_GT(m.kv_high_water_bytes, 0);
}

TEST(ServeEngine, OversizedRequestRejectedImmediately) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(44);
  nn::CausalLm model(cfg, rng);
  EngineConfig ecfg = engine_cfg(1);
  ecfg.kv_byte_budget = 64;  // smaller than any sequence's projection
  ServeEngine engine(model, ecfg);
  auto fut = engine.submit(greedy_request(1, seq_tokens(4, cfg.vocab), 4));
  const Completion c = fut.get();
  EXPECT_EQ(c.status, RequestStatus::kRejected);
  EXPECT_TRUE(c.tokens.empty());
  EXPECT_EQ(engine.metrics().rejected, 1);
}

TEST(ServeEngine, SubmitAfterShutdownIsRejected) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(45);
  nn::CausalLm model(cfg, rng);
  ServeEngine engine(model, engine_cfg(1));
  engine.shutdown();
  auto fut = engine.submit(greedy_request(1, seq_tokens(3, cfg.vocab), 2));
  EXPECT_EQ(fut.get().status, RequestStatus::kRejected);
}

TEST(ServeEngine, SubmitValidatesRequests) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(46);
  nn::CausalLm model(cfg, rng);
  ServeEngine engine(model, engine_cfg(1));

  EXPECT_THROW(engine.submit(greedy_request(1, {}, 4)), std::invalid_argument);
  EXPECT_THROW(engine.submit(greedy_request(1, {cfg.vocab}, 4)), std::invalid_argument);
  EXPECT_THROW(engine.submit(greedy_request(1, {1}, 0)), std::invalid_argument);
  EXPECT_THROW(engine.submit(greedy_request(1, seq_tokens(cfg.max_seq + 1, cfg.vocab), 1)),
               std::invalid_argument);
  Request bad_k = greedy_request(1, {1}, 4);
  bad_k.top_k = cfg.vocab + 1;
  EXPECT_THROW(engine.submit(bad_k), std::invalid_argument);
  // Depth 5 isn't a registered exit of the tiny model ({1, 2, 3}).
  EXPECT_THROW(engine.submit(greedy_request(1, {1}, 4, ExitPolicy::kFixedEarly, 5)),
               std::invalid_argument);
}

TEST(ServeEngine, CancelQueuedRequest) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(47);
  nn::CausalLm model(cfg, rng);
  // One batch slot: the second request is guaranteed to queue behind the
  // first at submit time. Pausing the scheduler makes the cancel
  // deterministic — request 2 is still queued when it lands, so it must
  // resolve kCancelled (before pause() existed this raced the decode loop
  // and had to accept either outcome).
  ServeEngine engine(model, engine_cfg(1, /*max_batch=*/1));
  engine.pause();
  auto f1 = engine.submit(greedy_request(1, seq_tokens(4, cfg.vocab), 8));
  auto f2 = engine.submit(greedy_request(2, seq_tokens(4, cfg.vocab), 8));
  EXPECT_TRUE(engine.cancel(2));
  EXPECT_FALSE(engine.cancel(99));  // unknown id
  engine.resume();
  EXPECT_EQ(f1.get().status, RequestStatus::kOk);
  EXPECT_EQ(f2.get().status, RequestStatus::kCancelled);
  EXPECT_EQ(engine.metrics().cancelled, 1);
}

TEST(ServeEngine, PauseParksAndResumeDrains) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(52);
  nn::CausalLm model(cfg, rng);
  ServeEngine engine(model, engine_cfg(1, /*max_batch=*/4));

  engine.pause();
  engine.pause();  // idempotent
  auto fut = engine.submit(greedy_request(1, seq_tokens(4, cfg.vocab), 3));
  // Parked scheduler: nothing is admitted or decoded while paused.
  EXPECT_EQ(engine.metrics().ticks, 0);
  EXPECT_EQ(fut.wait_for(std::chrono::milliseconds(0)), std::future_status::timeout);
  engine.resume();
  EXPECT_EQ(fut.get().status, RequestStatus::kOk);
  // Shutting down while paused must not deadlock.
  engine.pause();
  engine.shutdown();
  EXPECT_EQ(engine.metrics().completed, 1);
}

TEST(ServeEngine, DeadlineExpiryReturnsPartialTokens) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(48);
  nn::CausalLm model(cfg, rng);
  // A guaranteed worker stall makes every tick take ~60ms, so a 50ms
  // deadline deterministically survives admission (the loop wakes in
  // microseconds) but expires mid-decode — the kTimeout path, as opposed
  // to kExpired (deadline passing while still queued).
  runtime::ServeFaultPlan fp;
  fp.worker_stall_prob = 1.0;
  fp.worker_stall_ms = 60.0;
  runtime::ServeFaultInjector fault(fp);
  EngineConfig ecfg = engine_cfg(1);
  ecfg.fault = &fault;
  ServeEngine engine(model, ecfg);
  Request r = greedy_request(1, seq_tokens(1, cfg.vocab), 8);
  r.deadline_ms = 50.0;
  const Completion c = engine.submit(r).get();
  EXPECT_EQ(c.status, RequestStatus::kTimeout);
  // The single prompt token is fed and sampled on the stalled first tick,
  // so exactly one partial token comes back.
  EXPECT_EQ(c.tokens.size(), 1u);
  EXPECT_EQ(c.error, "deadline exceeded mid-decode");
  EXPECT_EQ(engine.metrics().timed_out, 1);
}

TEST(ServeEngine, DeadlineExpiredWhileQueuedIsExpiredNotAdmitted) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(48);
  nn::CausalLm model(cfg, rng);
  ServeEngine engine(model, engine_cfg(1));
  // Park the scheduler so the request provably sits in the queue past its
  // deadline; the admission scan must then retire it without ever giving
  // it a batch slot or a KV slot.
  engine.pause();
  Request r = greedy_request(9, seq_tokens(4, cfg.vocab), 8);
  r.deadline_ms = 5.0;
  auto fut = engine.submit(r);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.resume();
  const Completion c = fut.get();
  EXPECT_EQ(c.status, RequestStatus::kExpired);
  EXPECT_TRUE(c.tokens.empty());
  EXPECT_EQ(c.error, "deadline expired while queued");
  EXPECT_EQ(c.metrics.queue_wait_ms, 0.0);  // never admitted
  EXPECT_EQ(engine.metrics().expired, 1);
  EXPECT_EQ(engine.metrics().timed_out, 0);
  // Never occupied a KV slot: no acquire was ever recorded.
  EXPECT_EQ(engine.registry().counter("kv/acquired").value(), 0);
}

TEST(ServeEngine, PerRequestMetricsArePopulated) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(49);
  nn::CausalLm model(cfg, rng);
  ServeEngine engine(model, engine_cfg(1));
  const Completion c = engine.submit(greedy_request(7, seq_tokens(4, cfg.vocab), 6)).get();
  EXPECT_EQ(c.metrics.prompt_tokens, 4);
  EXPECT_EQ(c.metrics.output_tokens, 6);
  EXPECT_GT(c.metrics.ttft_ms, 0.0);
  EXPECT_GE(c.metrics.total_ms, c.metrics.ttft_ms);
  EXPECT_GT(c.metrics.tokens_per_s, 0.0);
  // 4 prompt + 5 generated positions cached at completion (the 6th sampled
  // token is returned but never fed back).
  EXPECT_EQ(c.metrics.kv_bytes,
            9 * nn::KvCache::bytes_per_position(cfg.n_layers, cfg.kv_dim(), false));
}

TEST(ServeEngine, SetExitWeightsValidatesSizes) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(50);
  nn::CausalLm model(cfg, rng);
  ServeEngine engine(model, engine_cfg(1));
  EXPECT_THROW(engine.set_exit_weights({1.0f}, {0.0f}), std::invalid_argument);
  engine.set_exit_weights({0.2f, 0.3f, 0.5f}, {1.0f, 0.8f, 0.6f});
}

// --- scheduler (policy unit tests) ------------------------------------------

TEST(KvCachePool, AcquireReportsStructuredRejectReason) {
  const int64_t per_seq = 8 * nn::KvCache::bytes_per_position(3, 16, false);
  KvCachePool pool(pool_cfg(1, /*budget=*/2 * per_seq));
  KvAdmitReason reason = KvAdmitReason::kByteBudget;
  ASSERT_GE(pool.acquire(8, 3, &reason), 0);
  EXPECT_EQ(reason, KvAdmitReason::kOk);
  // Single slot occupied: the second acquire fails on slots, not bytes.
  EXPECT_EQ(pool.acquire(8, 3, &reason), -1);
  EXPECT_EQ(reason, KvAdmitReason::kSlotsExhausted);
  EXPECT_STREQ(to_string(reason), "kv: slots exhausted");

  KvCachePool tight(pool_cfg(4, /*budget=*/per_seq));
  ASSERT_GE(tight.acquire(8, 3, &reason), 0);
  // Free slots remain but the budget is spent: byte-budget rejection.
  EXPECT_EQ(tight.acquire(8, 3, &reason), -1);
  EXPECT_EQ(reason, KvAdmitReason::kByteBudget);
  EXPECT_STREQ(to_string(reason), "kv: byte budget exceeded");
}

TEST(ServeEngine, KvShedSurfacesByteBudgetReasonInCompletionError) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(61);
  nn::CausalLm model(cfg, rng);
  const int64_t per_pos = nn::KvCache::bytes_per_position(cfg.n_layers, cfg.kv_dim(), false);
  EngineConfig ecfg = engine_cfg(1, /*max_batch=*/4);
  ecfg.kv_byte_budget = 8 * per_pos;      // exactly one 8-position sequence
  ecfg.max_admission_retries = 1;         // shed on the first failed acquire
  ServeEngine engine(model, ecfg);

  engine.pause();
  auto f1 = engine.submit(greedy_request(1, seq_tokens(4, cfg.vocab), 4));      // fills budget
  auto f2 = engine.submit(greedy_request(2, seq_tokens(4, cfg.vocab, 1), 4));   // cannot fit
  engine.resume();
  EXPECT_EQ(f1.get().status, RequestStatus::kOk);
  const Completion shed = f2.get();
  EXPECT_EQ(shed.status, RequestStatus::kShed);
  // The structured reason distinguishes byte-budget from slot exhaustion.
  EXPECT_NE(shed.error.find("kv: byte budget exceeded"), std::string::npos) << shed.error;
  EXPECT_NE(shed.error.find("after 1 attempts"), std::string::npos) << shed.error;
  EXPECT_EQ(engine.metrics().shed, 1);
}

TEST(ServeEngine, SaturatedQueueRejectsWithErrorAndRecovers) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(62);
  nn::CausalLm model(cfg, rng);
  EngineConfig ecfg = engine_cfg(1, /*max_batch=*/1);
  ecfg.queue_capacity = 2;
  ServeEngine engine(model, ecfg);

  engine.pause();  // everything queues: saturation is deterministic
  auto f1 = engine.submit(greedy_request(1, seq_tokens(2, cfg.vocab), 2));
  auto f2 = engine.submit(greedy_request(2, seq_tokens(2, cfg.vocab, 1), 2));
  const Completion over = engine.submit(greedy_request(3, seq_tokens(2, cfg.vocab, 2), 2)).get();
  EXPECT_EQ(over.status, RequestStatus::kRejected);
  EXPECT_EQ(over.error, "admission queue full");
  engine.resume();
  // Saturation is transient: queued work drains and new work is accepted.
  EXPECT_EQ(f1.get().status, RequestStatus::kOk);
  EXPECT_EQ(f2.get().status, RequestStatus::kOk);
  EXPECT_EQ(engine.submit(greedy_request(4, seq_tokens(2, cfg.vocab, 3), 2)).get().status,
            RequestStatus::kOk);
  const EngineMetrics m = engine.metrics();
  EXPECT_EQ(m.rejected, 1);
  EXPECT_EQ(m.completed, 3);
  EXPECT_EQ(m.submitted, 4);
}

// Saturation + cancellation under real thread contention, repeated 20x so
// TSan gets many interleavings (CI runs this suite under ASan and TSan).
TEST(ServeEngine, ConcurrentSubmitAndCancelWhileQueuedUnderContention) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(63);
  nn::CausalLm model(cfg, rng);
  for (int iter = 0; iter < 20; ++iter) {
    EngineConfig ecfg = engine_cfg(2, /*max_batch=*/2);
    ecfg.queue_capacity = 8;
    ServeEngine engine(model, ecfg);

    constexpr int kSubmitters = 4;
    constexpr int kPerThread = 8;
    std::vector<std::future<Completion>> futs(kSubmitters * kPerThread);
    std::vector<std::thread> threads;
    threads.reserve(kSubmitters + 1);
    for (int t = 0; t < kSubmitters; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const int64_t id = t * kPerThread + i;
          futs[static_cast<size_t>(id)] =
              engine.submit(greedy_request(id, seq_tokens(2, cfg.vocab, id), 2));
        }
      });
    }
    // The canceller races the submitters and the scheduler: every id is
    // targeted, whether still unsubmitted, queued, active, or finished.
    threads.emplace_back([&] {
      for (int64_t id = 0; id < kSubmitters * kPerThread; ++id) engine.cancel(id);
    });
    for (auto& th : threads) th.join();
    engine.shutdown();

    int64_t resolved = 0;
    for (auto& f : futs) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
      const Completion c = f.get();
      EXPECT_TRUE(c.status == RequestStatus::kOk || c.status == RequestStatus::kCancelled ||
                  c.status == RequestStatus::kRejected)
          << to_string(c.status);
      ++resolved;
    }
    const EngineMetrics m = engine.metrics();
    EXPECT_EQ(resolved, m.submitted);
    EXPECT_EQ(m.submitted, m.completed + m.rejected + m.cancelled + m.timed_out + m.shed +
                               m.expired + m.failed);
    EXPECT_EQ(engine.registry().counter("kv/acquired").value(),
              engine.registry().counter("kv/released").value());
  }
}

TEST(Scheduler, QueueCapacityBoundsEnqueue) {
  SchedulerConfig cfg{/*max_batch=*/1, /*queue_capacity=*/2, /*max_seq=*/16, /*n_layers=*/3};
  Scheduler sched(cfg, pool_cfg(1, 0));
  for (int i = 0; i < 2; ++i) {
    auto s = std::make_unique<SeqState>();
    s->req.prompt = {1};
    EXPECT_TRUE(sched.enqueue(s));
  }
  auto extra = std::make_unique<SeqState>();
  extra->req.prompt = {1};
  EXPECT_FALSE(sched.enqueue(extra));
  EXPECT_NE(extra, nullptr);  // rejected request stays with the caller
  EXPECT_EQ(sched.queued(), 2u);
}

TEST(Scheduler, AdmitPreservesFifoHeadOfLine) {
  const int64_t per_pos = nn::KvCache::bytes_per_position(3, 16, false);
  SchedulerConfig cfg{/*max_batch=*/4, /*queue_capacity=*/8, /*max_seq=*/16, /*n_layers=*/3};
  // Budget fits a small sequence but not the large head request.
  Scheduler sched(cfg, pool_cfg(4, 4 * per_pos));

  auto big = std::make_unique<SeqState>();
  big->req.prompt = {1, 2, 3, 4};
  big->req.max_new_tokens = 8;  // projects 12 positions > budget
  big->exit_layer_used = 3;
  auto small = std::make_unique<SeqState>();
  small->req.prompt = {1};
  small->req.max_new_tokens = 1;  // projects 2 positions, would fit
  small->exit_layer_used = 3;
  ASSERT_TRUE(sched.enqueue(big));
  ASSERT_TRUE(sched.enqueue(small));

  sched.admit(/*degrade_level=*/0, DegradeLadder{}, std::chrono::steady_clock::now());
  // The small request must NOT jump the blocked head (no starvation).
  EXPECT_TRUE(sched.active().empty());
  EXPECT_EQ(sched.queued(), 2u);
}

// --- wire format ------------------------------------------------------------

TEST(RequestJson, ParsesFullRequest) {
  const Request r = parse_request_json(
      R"({"id": 3, "prompt": [1, 2, 3], "max_new_tokens": 16, "temperature": 0.5,)"
      R"( "top_k": 8, "exit": "voted", "seed": 9, "deadline_ms": 250})");
  EXPECT_EQ(r.id, 3);
  EXPECT_EQ(r.prompt, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(r.max_new_tokens, 16);
  EXPECT_FLOAT_EQ(r.temperature, 0.5f);
  EXPECT_EQ(r.top_k, 8);
  EXPECT_EQ(r.exit_policy, ExitPolicy::kVoted);
  EXPECT_EQ(r.seed, 9u);
  EXPECT_DOUBLE_EQ(r.deadline_ms, 250.0);
}

TEST(RequestJson, DefaultsAndExitVariants) {
  const Request r = parse_request_json(R"({"prompt": [5]})");
  EXPECT_EQ(r.exit_policy, ExitPolicy::kFinal);
  EXPECT_EQ(r.max_new_tokens, 32);
  EXPECT_FLOAT_EQ(r.temperature, 0.0f);

  EXPECT_EQ(parse_request_json(R"({"prompt": [5], "exit": "final"})").exit_policy,
            ExitPolicy::kFinal);
  const Request early = parse_request_json(R"({"prompt": [5], "exit": 2})");
  EXPECT_EQ(early.exit_policy, ExitPolicy::kFixedEarly);
  EXPECT_EQ(early.exit_layer, 2);
}

TEST(RequestJson, RejectsMalformedLines) {
  EXPECT_THROW(parse_request_json(R"({"prompt": []})"), std::invalid_argument);
  EXPECT_THROW(parse_request_json(R"({"id": 1})"), std::invalid_argument);  // no prompt
  EXPECT_THROW(parse_request_json(R"({"prompt": [1], "bogus": 2})"), std::invalid_argument);
  EXPECT_THROW(parse_request_json(R"({"prompt": [1], "exit": "sideways"})"),
               std::invalid_argument);
  EXPECT_THROW(parse_request_json(R"({"prompt": [1]} trailing)"), std::invalid_argument);
  EXPECT_THROW(parse_request_json("not json"), std::invalid_argument);
}

TEST(RequestJson, CompletionRoundTripsKeyFields) {
  Completion c;
  c.id = 12;
  c.status = RequestStatus::kOk;
  c.tokens = {4, 5, 6};
  c.metrics.kv_bytes = 1024;
  const std::string j = completion_to_json(c);
  EXPECT_NE(j.find("\"id\": 12"), std::string::npos);
  EXPECT_NE(j.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(j.find("[4, 5, 6]"), std::string::npos);
  EXPECT_NE(j.find("\"kv_bytes\": 1024"), std::string::npos);
}

// Error reasons carry arbitrary text — quota sheds embed the tenant name in
// quotes (`quota: tenant "alpha" ...`), worker failures embed exception
// messages — so the serializer must escape them or the wire line stops
// being valid JSON.
TEST(RequestJson, CompletionEscapesErrorText) {
  Completion c;
  c.id = 3;
  c.status = RequestStatus::kShed;
  c.error = "quota: tenant \"al\\pha\"\nbucket empty";
  const std::string j = completion_to_json(c);
  EXPECT_NE(j.find(R"("error": "quota: tenant \"al\\pha\"\nbucket empty")"),
            std::string::npos);
  // No raw quote/backslash/newline from the payload may survive unescaped.
  EXPECT_EQ(j.find('\n'), std::string::npos);
  // Degraded completions advertise the exit that actually decoded.
  c.status = RequestStatus::kOk;
  c.error.clear();
  c.degraded = true;
  c.exit_layer_used = 1;
  const std::string d = completion_to_json(c);
  EXPECT_NE(d.find("\"degraded\": true, \"exit_layer\": 1"), std::string::npos);
}

}  // namespace
}  // namespace edgellm::serve
