// Admission control and graceful degradation: token-bucket quotas and
// pressure thresholds in isolation (synthetic clocks, no engine), then the
// policies wired through ServeEngine — degrade-to-early-exit determinism,
// drop-lowest-priority eviction, and per-priority-class latency metrics.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>

#include "serve/engine.hpp"
#include "test_util.hpp"

namespace edgellm::serve {
namespace {

using edgellm::testing::tiny_config;
using Clock = std::chrono::steady_clock;

std::vector<int64_t> seq_tokens(int64_t n, int64_t vocab, int64_t salt = 0) {
  std::vector<int64_t> t(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) t[static_cast<size_t>(i)] = (i * 5 + 2 + salt) % vocab;
  return t;
}

Request greedy_request(int64_t id, std::vector<int64_t> prompt, int64_t n_new) {
  Request r;
  r.id = id;
  r.prompt = std::move(prompt);
  r.max_new_tokens = n_new;
  r.temperature = 0.0f;
  return r;
}

std::vector<int64_t> reference_greedy(nn::CausalLm& model, const std::vector<int64_t>& prompt,
                                      int64_t n_new, int64_t exit_layer = 0) {
  nn::IncrementalDecoder dec(model, exit_layer);
  nn::GenerateConfig g;
  g.max_new_tokens = n_new;
  g.temperature = 0.0f;
  g.exit_layer = exit_layer;
  Rng rng(0);
  return dec.generate(prompt, g, rng);
}

// --- AdmissionController units ----------------------------------------------

TEST(AdmissionController, InertByDefault) {
  AdmissionController ctl{AdmissionConfig{}};
  Pressure heavy;
  heavy.queue_ratio = 1.0;
  heavy.kv_ratio = 1.0;
  heavy.tick_ewma_ms = 1e6;
  // All thresholds default to 0 = disabled: even saturated pressure admits.
  const auto d = ctl.on_submit("anyone", heavy, Clock::now());
  EXPECT_EQ(d.action, AdmissionController::Decision::kAdmit);
  EXPECT_EQ(ctl.degrade_level(heavy), 0);
}

TEST(AdmissionController, TokenBucketEnforcesPerTenantQuota) {
  AdmissionConfig cfg;
  cfg.tenant_rate = 10.0;  // 10 req/s sustained
  cfg.tenant_burst = 2.0;
  AdmissionController ctl(cfg);
  const auto t0 = Clock::now();
  const Pressure calm;

  // Burst capacity: two immediate admits, then the bucket is empty.
  EXPECT_EQ(ctl.on_submit("a", calm, t0).action, AdmissionController::Decision::kAdmit);
  EXPECT_EQ(ctl.on_submit("a", calm, t0).action, AdmissionController::Decision::kAdmit);
  const auto d = ctl.on_submit("a", calm, t0);
  EXPECT_EQ(d.action, AdmissionController::Decision::kShed);
  EXPECT_NE(d.reason.find("quota"), std::string::npos);
  EXPECT_NE(d.reason.find("\"a\""), std::string::npos);

  // Tenants are isolated: "b" still has its full burst.
  EXPECT_EQ(ctl.on_submit("b", calm, t0).action, AdmissionController::Decision::kAdmit);

  // Refill at tenant_rate: 100ms buys exactly one more token for "a".
  const auto t1 = t0 + std::chrono::milliseconds(100);
  EXPECT_EQ(ctl.on_submit("a", calm, t1).action, AdmissionController::Decision::kAdmit);
  EXPECT_EQ(ctl.on_submit("a", calm, t1).action, AdmissionController::Decision::kShed);

  // Refill is capped at the burst, not unbounded.
  const auto t2 = t1 + std::chrono::hours(1);
  EXPECT_EQ(ctl.on_submit("a", calm, t2).action, AdmissionController::Decision::kAdmit);
  EXPECT_EQ(ctl.on_submit("a", calm, t2).action, AdmissionController::Decision::kAdmit);
  EXPECT_EQ(ctl.on_submit("a", calm, t2).action, AdmissionController::Decision::kShed);
}

TEST(AdmissionController, ThresholdsMapPressureToDegradeLevels) {
  AdmissionConfig cfg;
  cfg.degrade_queue_ratio = 0.5;
  cfg.shed_queue_ratio = 0.9;
  cfg.degrade_tick_ms = 10.0;
  cfg.shed_tick_ms = 50.0;
  AdmissionController ctl(cfg);

  Pressure p;
  EXPECT_EQ(ctl.degrade_level(p), 0);
  p.queue_ratio = 0.5;
  EXPECT_EQ(ctl.degrade_level(p), 1);  // at the degrade threshold
  p.queue_ratio = 0.95;
  EXPECT_EQ(ctl.degrade_level(p), 2);  // past the shed threshold
  p.queue_ratio = 0.0;
  p.tick_ewma_ms = 20.0;
  EXPECT_EQ(ctl.degrade_level(p), 1);  // any tripped signal is enough
  p.tick_ewma_ms = 60.0;
  EXPECT_EQ(ctl.degrade_level(p), 2);
  // KV signal left at 0 stays disabled even when the ratio is huge.
  p.tick_ewma_ms = 0.0;
  p.kv_ratio = 1.0;
  EXPECT_EQ(ctl.degrade_level(p), 0);
}

TEST(AdmissionController, ShedPolicySelectsActionUnderOverload) {
  Pressure hot;
  hot.queue_ratio = 1.0;
  for (ShedPolicy policy : {ShedPolicy::kRejectNew, ShedPolicy::kDropLowestPriority,
                            ShedPolicy::kDegradeEarlyExit}) {
    AdmissionConfig cfg;
    cfg.shed_policy = policy;
    cfg.shed_queue_ratio = 0.9;
    AdmissionController ctl(cfg);
    const auto d = ctl.on_submit("t", hot, Clock::now());
    if (policy == ShedPolicy::kDegradeEarlyExit) {
      EXPECT_EQ(d.action, AdmissionController::Decision::kAdmitDegraded);
    } else {
      // kRejectNew and kDropLowestPriority both *report* shed here; the
      // engine decides whether a lower-priority victim absorbs it.
      EXPECT_EQ(d.action, AdmissionController::Decision::kShed);
    }
    EXPECT_NE(d.reason.find("overload"), std::string::npos);
  }
}

TEST(AdmissionController, TickEwmaSmoothsObservations) {
  AdmissionConfig cfg;
  cfg.tick_ewma_alpha = 0.5;
  AdmissionController ctl(cfg);
  EXPECT_EQ(ctl.tick_ewma_ms(), 0.0);
  ctl.observe_tick(10.0);
  EXPECT_DOUBLE_EQ(ctl.tick_ewma_ms(), 10.0);  // first sample primes
  ctl.observe_tick(20.0);
  EXPECT_DOUBLE_EQ(ctl.tick_ewma_ms(), 15.0);
  ctl.observe_tick(15.0);
  EXPECT_DOUBLE_EQ(ctl.tick_ewma_ms(), 15.0);
}

TEST(AdmissionController, ValidatesConfig) {
  AdmissionConfig bad;
  bad.shed_queue_ratio = 1.5;
  EXPECT_THROW(AdmissionController{bad}, std::invalid_argument);
  AdmissionConfig alpha;
  alpha.tick_ewma_alpha = 0.0;
  EXPECT_THROW(AdmissionController{alpha}, std::invalid_argument);
  AdmissionConfig burst;
  burst.tenant_rate = 1.0;
  burst.tenant_burst = 0.5;
  EXPECT_THROW(AdmissionController{burst}, std::invalid_argument);
}

// --- degradation through the engine -----------------------------------------

// The paper's own knob as a survival mechanism: under overload the engine
// downgrades full-depth requests to a registered early exit. The output
// must equal a fixed-early decode at the ladder depth — degraded mode is
// deterministic, not merely "approximate".
TEST(AdmissionEngine, DegradedRequestsAreDeterministicEarlyExitOutputs) {
  const nn::ModelConfig cfg = tiny_config();  // exits {1, 2, 3}: ladder deep=2 shallow=1
  const std::vector<int64_t> prompt = seq_tokens(4, cfg.vocab);

  // Staging recomputes the degrade level from live pressure: with
  // shed_queue_ratio 0.25 and capacity 8, one queued request (ratio 0.125)
  // is calm, two (ratio 0.25) trip the survival floor.
  auto run_once = [&](uint64_t model_seed) {
    Rng rng(model_seed);
    nn::CausalLm model(cfg, rng);
    EngineConfig ecfg;
    ecfg.threads = 1;
    ecfg.queue_capacity = 8;
    ecfg.admission.shed_policy = ShedPolicy::kDegradeEarlyExit;
    ecfg.admission.shed_queue_ratio = 0.25;
    ServeEngine engine(model, ecfg);
    const Completion calm = engine.submit(greedy_request(1, prompt, 5)).get();
    engine.pause();  // build queue pressure deterministically
    auto f2 = engine.submit(greedy_request(2, prompt, 5));
    auto f3 = engine.submit(greedy_request(3, prompt, 5));
    engine.resume();
    const Completion c2 = f2.get();
    const Completion c3 = f3.get();
    engine.shutdown();
    return std::make_tuple(calm, c2, c3);
  };

  const auto [calm, c2, c3] = run_once(91);
  EXPECT_EQ(calm.status, RequestStatus::kOk);
  EXPECT_EQ(c2.status, RequestStatus::kOk);
  EXPECT_EQ(c3.status, RequestStatus::kOk);
  EXPECT_FALSE(calm.degraded);
  EXPECT_TRUE(c2.degraded);
  EXPECT_TRUE(c3.degraded);
  // Shed-level pressure lands on the survival floor: the shallowest exit.
  EXPECT_EQ(c2.exit_layer_used, 1);
  EXPECT_EQ(c3.exit_layer_used, 1);

  Rng rng(91);
  nn::CausalLm model(cfg, rng);
  EXPECT_EQ(calm.tokens, reference_greedy(model, prompt, 5));
  // Degraded mode is deterministic, not "approximate": bitwise equal to a
  // fixed-early decode at the ladder depth.
  EXPECT_EQ(c2.tokens, reference_greedy(model, prompt, 5, /*exit_layer=*/1));
  EXPECT_EQ(c3.tokens, c2.tokens);

  // Same seed, same storm -> bitwise-identical outputs on a rerun.
  const auto [calm_b, c2_b, c3_b] = run_once(91);
  EXPECT_EQ(calm_b.tokens, calm.tokens);
  EXPECT_EQ(c2_b.tokens, c2.tokens);
  EXPECT_EQ(c3_b.tokens, c3.tokens);
  EXPECT_EQ(c2_b.degraded, c2.degraded);
}

// force_degrade (set when a kDegradeEarlyExit shed decision admits during a
// storm) must stick at staging even if the pressure has subsided by then —
// degradation never upgrades.
TEST(SchedulerDegrade, ForceDegradeAppliesAtStagingEvenWhenPressureSubsides) {
  SchedulerConfig cfg{/*max_batch=*/2, /*queue_capacity=*/4, /*max_seq=*/16, /*n_layers=*/3};
  KvPoolConfig pool;
  pool.n_slots = 2;
  pool.kv_dim = 16;
  Scheduler sched(cfg, pool);
  const DegradeLadder ladder{/*deep=*/2, /*shallow=*/1};

  auto forced = std::make_unique<SeqState>();
  forced->req.prompt = {1, 2};
  forced->req.max_new_tokens = 2;
  forced->policy = ExitPolicy::kFinal;
  forced->exit_layer_used = 3;
  forced->force_degrade = true;
  auto normal = std::make_unique<SeqState>();
  normal->req.prompt = {1, 2};
  normal->req.max_new_tokens = 2;
  normal->policy = ExitPolicy::kVoted;
  normal->exit_layer_used = 3;
  ASSERT_TRUE(sched.enqueue(forced));
  ASSERT_TRUE(sched.enqueue(normal));

  // Pressure gone: global level 0. Only the marked request degrades, and
  // it lands on the survival floor.
  auto r = sched.admit(/*degrade_level=*/0, ladder, std::chrono::steady_clock::now());
  EXPECT_EQ(r.admitted, 2);
  EXPECT_EQ(r.degraded, 1);
  ASSERT_EQ(sched.active().size(), 2u);
  EXPECT_TRUE(sched.active()[0]->degraded);
  EXPECT_EQ(sched.active()[0]->policy, ExitPolicy::kFixedEarly);
  EXPECT_EQ(sched.active()[0]->exit_layer, 1);
  EXPECT_EQ(sched.active()[0]->exit_layer_used, 1);
  EXPECT_FALSE(sched.active()[1]->degraded);
  EXPECT_EQ(sched.active()[1]->policy, ExitPolicy::kVoted);
}

// Level 1 degrades to the *deepest* registered early exit (mild trade);
// fixed-early requests already at or below the rung are never touched, and
// nothing is ever upgraded.
TEST(SchedulerDegrade, LadderNeverUpgradesAndLevelOneUsesDeepExit) {
  SchedulerConfig cfg{/*max_batch=*/2, /*queue_capacity=*/4, /*max_seq=*/16, /*n_layers=*/3};
  KvPoolConfig pool;
  pool.n_slots = 2;
  pool.kv_dim = 16;
  Scheduler sched(cfg, pool);
  const DegradeLadder ladder{/*deep=*/2, /*shallow=*/1};

  auto final_req = std::make_unique<SeqState>();
  final_req->req.prompt = {1};
  final_req->req.max_new_tokens = 1;
  final_req->policy = ExitPolicy::kFinal;
  final_req->exit_layer_used = 3;
  auto shallow_req = std::make_unique<SeqState>();
  shallow_req->req.prompt = {1};
  shallow_req->req.max_new_tokens = 1;
  shallow_req->policy = ExitPolicy::kFixedEarly;
  shallow_req->exit_layer = 1;
  shallow_req->exit_layer_used = 1;  // already below the level-1 rung
  ASSERT_TRUE(sched.enqueue(final_req));
  ASSERT_TRUE(sched.enqueue(shallow_req));

  auto r = sched.admit(/*degrade_level=*/1, ladder, std::chrono::steady_clock::now());
  EXPECT_EQ(r.admitted, 2);
  EXPECT_EQ(r.degraded, 1);
  EXPECT_EQ(sched.active()[0]->exit_layer_used, 2);  // final -> deep exit
  EXPECT_TRUE(sched.active()[0]->degraded);
  EXPECT_EQ(sched.active()[1]->exit_layer_used, 1);  // untouched
  EXPECT_FALSE(sched.active()[1]->degraded);
}

TEST(AdmissionEngine, QuotaShedsSurfaceStructuredReason) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(92);
  nn::CausalLm model(cfg, rng);
  EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.admission.tenant_rate = 0.001;  // effectively one request per burst
  ecfg.admission.tenant_burst = 1.0;
  ServeEngine engine(model, ecfg);

  Request a = greedy_request(1, seq_tokens(2, cfg.vocab), 2);
  a.tenant = "acme";
  Request b = greedy_request(2, seq_tokens(2, cfg.vocab), 2);
  b.tenant = "acme";
  EXPECT_EQ(engine.submit(a).get().status, RequestStatus::kOk);
  const Completion shed = engine.submit(b).get();
  EXPECT_EQ(shed.status, RequestStatus::kShed);
  EXPECT_NE(shed.error.find("quota: tenant \"acme\""), std::string::npos) << shed.error;
  EXPECT_EQ(engine.metrics().shed, 1);
}

TEST(AdmissionEngine, DropLowestPriorityEvictsQueuedVictim) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(93);
  nn::CausalLm model(cfg, rng);
  EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.max_batch = 1;
  ecfg.queue_capacity = 3;
  ecfg.admission.shed_policy = ShedPolicy::kDropLowestPriority;
  ServeEngine engine(model, ecfg);

  engine.pause();
  // Fill the queue: normal-, low- and normal-priority waiters.
  auto f_run = engine.submit(greedy_request(1, seq_tokens(3, cfg.vocab), 3));
  Request low = greedy_request(2, seq_tokens(3, cfg.vocab, 1), 3);
  low.priority = kPriorityLow;
  Request norm = greedy_request(3, seq_tokens(3, cfg.vocab, 2), 3);
  norm.priority = kPriorityNormal;
  auto f_low = engine.submit(low);
  auto f_norm = engine.submit(norm);

  // Queue full: a high-priority arrival evicts the *lowest*-priority
  // waiter (not the normal one, not itself).
  Request high = greedy_request(4, seq_tokens(3, cfg.vocab, 3), 3);
  high.priority = kPriorityHigh;
  auto f_high = engine.submit(high);
  const Completion evicted = f_low.get();
  EXPECT_EQ(evicted.status, RequestStatus::kShed);
  EXPECT_EQ(evicted.error, "shed: evicted by higher-priority arrival");

  // A second low submit while still full: nothing strictly below kLow
  // exists, so the newcomer itself is rejected (queue full).
  Request low2 = greedy_request(5, seq_tokens(3, cfg.vocab, 4), 3);
  low2.priority = kPriorityLow;
  EXPECT_EQ(engine.submit(low2).get().status, RequestStatus::kRejected);

  engine.resume();
  EXPECT_EQ(f_run.get().status, RequestStatus::kOk);
  EXPECT_EQ(f_norm.get().status, RequestStatus::kOk);
  EXPECT_EQ(f_high.get().status, RequestStatus::kOk);
  const EngineMetrics m = engine.metrics();
  EXPECT_EQ(m.shed, 1);
  EXPECT_EQ(m.rejected, 1);
  EXPECT_EQ(m.completed, 3);
}

TEST(AdmissionEngine, PerPriorityClassWaitHistogramsAreRecorded) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(94);
  nn::CausalLm model(cfg, rng);
  EngineConfig ecfg;
  ecfg.threads = 1;
  ServeEngine engine(model, ecfg);

  Request hi = greedy_request(1, seq_tokens(2, cfg.vocab), 2);
  hi.priority = kPriorityHigh;
  Request lo = greedy_request(2, seq_tokens(2, cfg.vocab, 1), 2);
  lo.priority = kPriorityLow;
  EXPECT_EQ(engine.submit(hi).get().status, RequestStatus::kOk);
  EXPECT_EQ(engine.submit(lo).get().status, RequestStatus::kOk);
  EXPECT_EQ(engine.registry().histogram("serve/queue_wait_ms_p0").count(), 1);
  EXPECT_EQ(engine.registry().histogram("serve/queue_wait_ms_p1").count(), 0);
  EXPECT_EQ(engine.registry().histogram("serve/queue_wait_ms_p2").count(), 1);
  EXPECT_EQ(engine.registry().histogram("serve/queue_wait_ms").count(), 2);
}

TEST(AdmissionEngine, RejectsOutOfRangePriority) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(95);
  nn::CausalLm model(cfg, rng);
  ServeEngine engine(model, EngineConfig{});
  Request r = greedy_request(1, seq_tokens(2, cfg.vocab), 2);
  r.priority = 7;
  EXPECT_THROW(engine.submit(r), std::invalid_argument);
}

}  // namespace
}  // namespace edgellm::serve
