// Packed integer weights and checkpoint serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>

#include "nn/serialize.hpp"
#include "quant/packed.hpp"
#include "tensor/ops.hpp"
#include "tensor/rng.hpp"
#include "test_util.hpp"

namespace edgellm {
namespace {

TEST(Packed, DequantizeMatchesFakeQuant8) {
  Rng rng(1);
  const Tensor w = randn({16, 24}, rng);
  const quant::PackedMatrix p = quant::PackedMatrix::pack(w, 8);
  quant::QuantSpec spec;
  spec.bits = 8;
  spec.granularity = quant::Granularity::kPerRow;
  EXPECT_TRUE(p.dequantize().allclose(quant::fake_quant(w, spec), 1e-6f));
}

TEST(Packed, DequantizeMatchesFakeQuant4) {
  Rng rng(2);
  const Tensor w = randn({8, 33}, rng);  // odd cols exercises nibble packing
  const quant::PackedMatrix p = quant::PackedMatrix::pack(w, 4);
  quant::QuantSpec spec;
  spec.bits = 4;
  spec.granularity = quant::Granularity::kPerRow;
  EXPECT_TRUE(p.dequantize().allclose(quant::fake_quant(w, spec), 1e-6f));
}

TEST(Packed, StorageIsActuallySmall) {
  const Tensor w({64, 64}, 1.0f);
  const quant::PackedMatrix p8 = quant::PackedMatrix::pack(w, 8);
  const quant::PackedMatrix p4 = quant::PackedMatrix::pack(w, 4);
  EXPECT_EQ(p8.storage_bytes(), 64 * 64 + 64 * 4);
  EXPECT_EQ(p4.storage_bytes(), 64 * 32 + 64 * 4);
  EXPECT_THROW(quant::PackedMatrix::pack(w, 3), std::invalid_argument);
}

// Property: the int-accumulating GEMM equals fp GEMM against the
// dequantized matrix, across shapes and bit-widths.
class PackedGemm : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(PackedGemm, MatchesDequantizedReference) {
  const auto [m, k, n, bits] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 97 + k * 13 + n + bits));
  const Tensor x = randn({m, k}, rng);
  const Tensor w = randn({n, k}, rng);
  const quant::PackedMatrix p = quant::PackedMatrix::pack(w, bits);
  const Tensor got = quant::packed_matmul_nt(x, p);
  const Tensor ref = ops::matmul_nt(x, p.dequantize());
  EXPECT_TRUE(got.allclose(ref, 1e-3f));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndBits, PackedGemm,
    ::testing::Values(std::make_tuple(1, 8, 8, 8), std::make_tuple(4, 16, 12, 8),
                      std::make_tuple(7, 33, 5, 4), std::make_tuple(16, 64, 64, 4),
                      std::make_tuple(3, 9, 17, 8), std::make_tuple(2, 31, 31, 4)));

TEST(Packed, NibbleValuesRoundTrip) {
  Tensor w({1, 4}, std::vector<float>{-7.0f, -1.0f, 0.0f, 7.0f});
  const quant::PackedMatrix p = quant::PackedMatrix::pack(w, 4);
  EXPECT_EQ(p.value_at(0, 0), -7);
  EXPECT_EQ(p.value_at(0, 1), -1);
  EXPECT_EQ(p.value_at(0, 2), 0);
  EXPECT_EQ(p.value_at(0, 3), 7);
}

TEST(Serialize, ModelRoundTripsThroughDisk) {
  const std::string path = ::testing::TempDir() + "/edgellm_ckpt.bin";
  const nn::ModelConfig cfg = edgellm::testing::tiny_config();
  Rng rng_a(3);
  nn::CausalLm a(cfg, rng_a);
  nn::save_model(a, path);

  Rng rng_b(99);
  nn::CausalLm b(cfg, rng_b);
  nn::load_model(b, path);

  std::vector<int64_t> toks = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_TRUE(a.forward_eval(toks, 2, 4, cfg.n_layers)
                  .allclose(b.forward_eval(toks, 2, 4, cfg.n_layers), 1e-6f));
  std::remove(path.c_str());
}

TEST(Serialize, DetectsCorruptFiles) {
  const std::string path = ::testing::TempDir() + "/edgellm_bad.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a checkpoint at all";
  }
  EXPECT_THROW(nn::load_state_dict_file(path), std::runtime_error);
  EXPECT_THROW(nn::load_state_dict_file("/nonexistent/dir/x.bin"), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, TruncationDetected) {
  const std::string good = ::testing::TempDir() + "/edgellm_good.bin";
  const std::string trunc = ::testing::TempDir() + "/edgellm_trunc.bin";
  std::map<std::string, Tensor> state;
  Rng rng(4);
  state.emplace("w", randn({8, 8}, rng));
  nn::save_state_dict(state, good);

  // Copy all but the last 16 bytes.
  std::ifstream is(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  std::ofstream os(trunc, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 16));
  os.close();

  EXPECT_THROW(nn::load_state_dict_file(trunc), std::runtime_error);
  std::remove(good.c_str());
  std::remove(trunc.c_str());
}

TEST(Serialize, ConfigCarryingCheckpointRoundTrips) {
  const std::string path = ::testing::TempDir() + "/edgellm_cfg_ckpt.bin";
  nn::ModelConfig cfg = edgellm::testing::tiny_config();
  cfg.tie_exit_heads = false;
  Rng rng(7);
  nn::CausalLm a(cfg, rng);
  nn::save_model_with_config(a, path);

  auto b = nn::load_model_with_config(path);
  EXPECT_EQ(b->config().vocab, cfg.vocab);
  EXPECT_EQ(b->config().d_model, cfg.d_model);
  EXPECT_EQ(b->config().n_layers, cfg.n_layers);
  EXPECT_EQ(b->config().exit_layers, a.exit_layers());
  EXPECT_EQ(b->config().tie_exit_heads, cfg.tie_exit_heads);

  std::vector<int64_t> toks = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_TRUE(a.forward_eval(toks, 2, 4, cfg.n_layers)
                  .allclose(b->forward_eval(toks, 2, 4, cfg.n_layers), 1e-6f));
  std::remove(path.c_str());
}

TEST(Serialize, PlainCheckpointLacksConfig) {
  const std::string path = ::testing::TempDir() + "/edgellm_plain_ckpt.bin";
  Rng rng(8);
  nn::CausalLm a(edgellm::testing::tiny_config(), rng);
  nn::save_model(a, path);
  EXPECT_THROW(nn::load_model_with_config(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, PreservesShapesAndNames) {
  const std::string path = ::testing::TempDir() + "/edgellm_sd.bin";
  std::map<std::string, Tensor> state;
  Rng rng(5);
  state.emplace("a.weight", randn({3, 5}, rng));
  state.emplace("b.bias", randn({7}, rng));
  nn::save_state_dict(state, path);
  const auto loaded = nn::load_state_dict_file(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_TRUE(loaded.at("a.weight").equals(state.at("a.weight")));
  EXPECT_TRUE(loaded.at("b.bias").equals(state.at("b.bias")));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace edgellm
