// KV-cached incremental decoding must agree exactly with the batched
// forward pass, under compression too.
#include <gtest/gtest.h>

#include "core/tuner.hpp"
#include "data/eval.hpp"
#include "nn/decoder.hpp"
#include "test_util.hpp"

namespace edgellm::nn {
namespace {

using edgellm::testing::tiny_config;

std::vector<int64_t> seq_tokens(int64_t n, int64_t vocab) {
  std::vector<int64_t> t(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) t[static_cast<size_t>(i)] = (i * 5 + 2) % vocab;
  return t;
}

TEST(Decoder, MatchesBatchedForwardAtEveryPosition) {
  const ModelConfig cfg = tiny_config();
  Rng rng(1);
  CausalLm model(cfg, rng);
  const auto toks = seq_tokens(10, cfg.vocab);

  // Batched reference: logits for the full sequence at once.
  const Tensor ref = model.forward_eval(toks, 1, 10, cfg.n_layers);

  IncrementalDecoder dec(model);
  dec.prime({toks[0]});
  for (size_t i = 1; i <= toks.size(); ++i) {
    const Tensor& inc = dec.logits();
    for (int64_t v = 0; v < cfg.vocab; ++v) {
      ASSERT_NEAR(inc[v], ref[(static_cast<int64_t>(i) - 1) * cfg.vocab + v], 1e-4f)
          << "pos " << i - 1 << " vocab " << v;
    }
    if (i < toks.size()) dec.step(toks[i]);
  }
}

TEST(Decoder, MatchesBatchedForwardUnderCompression) {
  const ModelConfig cfg = tiny_config();
  Rng rng(2);
  CausalLm model(cfg, rng);
  quant::QuantSpec q;
  q.bits = 4;
  prune::PruneSpec p;
  p.sparsity = 0.5f;
  for (TransformerBlock* b : model.blocks()) b->set_compression(q, p);

  const auto toks = seq_tokens(8, cfg.vocab);
  const Tensor ref = model.forward_eval(toks, 1, 8, cfg.n_layers);

  IncrementalDecoder dec(model);
  dec.prime(toks);
  for (int64_t v = 0; v < cfg.vocab; ++v) {
    EXPECT_NEAR(dec.logits()[v], ref[7 * cfg.vocab + v], 1e-4f);
  }
}

TEST(Decoder, EarlyExitDecoding) {
  const ModelConfig cfg = tiny_config();
  Rng rng(3);
  CausalLm model(cfg, rng);
  const auto toks = seq_tokens(6, cfg.vocab);
  const Tensor ref = model.forward_eval(toks, 1, 6, /*exit_layer=*/2);

  IncrementalDecoder dec(model, /*exit_layer=*/2);
  dec.prime(toks);
  for (int64_t v = 0; v < cfg.vocab; ++v) {
    EXPECT_NEAR(dec.logits()[v], ref[5 * cfg.vocab + v], 1e-4f);
  }
  EXPECT_THROW(IncrementalDecoder(model, 5), std::invalid_argument);  // not an exit
}

TEST(Decoder, KvCacheGrowsLinearly) {
  const ModelConfig cfg = tiny_config();
  Rng rng(4);
  CausalLm model(cfg, rng);
  IncrementalDecoder dec(model);
  dec.prime({1});
  const int64_t one = dec.kv_cache_bytes();
  // K + V per layer per position.
  EXPECT_EQ(one, cfg.n_layers * 2 * cfg.d_model * static_cast<int64_t>(sizeof(float)));
  dec.step(2);
  dec.step(3);
  EXPECT_EQ(dec.kv_cache_bytes(), 3 * one);
  EXPECT_EQ(dec.position(), 3);
}

TEST(Decoder, ContextWindowEnforced) {
  ModelConfig cfg = tiny_config();
  cfg.max_seq = 4;
  Rng rng(5);
  CausalLm model(cfg, rng);
  IncrementalDecoder dec(model);
  dec.prime({1, 2, 3, 4});
  EXPECT_THROW(dec.step(5), std::invalid_argument);
}

TEST(Decoder, GreedySamplingIsArgmax) {
  Tensor logits = Tensor::from_values({0.1f, 3.0f, -1.0f, 0.5f});
  Rng rng(6);
  GenerateConfig cfg;
  cfg.temperature = 0.0f;
  EXPECT_EQ(sample_token(logits, cfg, rng), 1);
}

TEST(Decoder, TopKRestrictsSupport) {
  Tensor logits = Tensor::from_values({5.0f, 4.0f, -10.0f, -10.0f});
  Rng rng(7);
  GenerateConfig cfg;
  cfg.temperature = 1.0f;
  cfg.top_k = 2;
  for (int i = 0; i < 50; ++i) {
    const int64_t t = sample_token(logits, cfg, rng);
    EXPECT_TRUE(t == 0 || t == 1) << t;
  }
}

TEST(Decoder, GenerateProducesRequestedTokens) {
  const ModelConfig cfg = tiny_config();
  Rng rng(8);
  CausalLm model(cfg, rng);
  IncrementalDecoder dec(model);
  GenerateConfig gcfg;
  gcfg.max_new_tokens = 5;
  gcfg.temperature = 0.8f;
  Rng srng(9);
  const auto out = dec.generate({1, 2, 3}, gcfg, srng);
  EXPECT_EQ(out.size(), 5u);
  for (int64_t t : out) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, cfg.vocab);
  }
}

TEST(Decoder, QuantizedKvCloseToFp) {
  const ModelConfig cfg = tiny_config();
  Rng rng(20);
  CausalLm model(cfg, rng);
  const auto toks = seq_tokens(10, cfg.vocab);

  IncrementalDecoder fp(model, 0, /*quantize_kv=*/false);
  IncrementalDecoder q(model, 0, /*quantize_kv=*/true);
  fp.prime(toks);
  q.prime(toks);

  // int8 KV perturbs logits slightly; rankings should survive.
  float max_abs = 0.0f;
  for (int64_t v = 0; v < cfg.vocab; ++v) max_abs = std::max(max_abs, std::fabs(fp.logits()[v]));
  for (int64_t v = 0; v < cfg.vocab; ++v) {
    EXPECT_NEAR(q.logits()[v], fp.logits()[v], 0.05f * std::max(1.0f, max_abs)) << v;
  }
}

TEST(Decoder, ResetAllowsServingSuccessivePrompts) {
  const ModelConfig cfg = tiny_config();
  Rng rng(30);
  CausalLm model(cfg, rng);
  const auto a = seq_tokens(6, cfg.vocab);
  const std::vector<int64_t> b = {3, 1, 4, 1, 5};

  IncrementalDecoder fresh(model);
  fresh.prime(b);

  IncrementalDecoder reused(model);
  reused.prime(a);
  reused.reset();
  EXPECT_EQ(reused.position(), 0);
  EXPECT_EQ(reused.kv_cache_bytes(), 0);
  reused.prime(b);
  for (int64_t v = 0; v < cfg.vocab; ++v) {
    EXPECT_EQ(reused.logits()[v], fresh.logits()[v]) << v;  // no state leaked
  }
}

TEST(Decoder, GenerateConfigValidation) {
  const ModelConfig cfg = tiny_config();
  Rng rng(31);
  CausalLm model(cfg, rng);
  IncrementalDecoder dec(model);
  Rng srng(1);

  GenerateConfig g;
  g.max_new_tokens = 0;
  EXPECT_THROW(dec.generate({1}, g, srng), std::invalid_argument);
  g = GenerateConfig{};
  g.top_k = cfg.vocab + 1;
  EXPECT_THROW(dec.generate({1}, g, srng), std::invalid_argument);
  g = GenerateConfig{};
  g.top_k = -1;
  EXPECT_THROW(dec.generate({1}, g, srng), std::invalid_argument);
  g = GenerateConfig{};
  g.exit_layer = 5;  // not a registered exit
  EXPECT_THROW(dec.generate({1}, g, srng), std::invalid_argument);
  g = GenerateConfig{};
  g.exit_layer = 2;  // registered, but this decoder caches full depth
  EXPECT_THROW(dec.generate({1}, g, srng), std::invalid_argument);

  IncrementalDecoder early(model, 2);
  g = GenerateConfig{};
  g.exit_layer = 2;
  g.max_new_tokens = 2;
  EXPECT_EQ(early.generate({1}, g, srng).size(), 2u);
}

TEST(Decoder, QuantizedKvBytesAccountedExactly) {
  const ModelConfig cfg = tiny_config();
  Rng rng(32);
  CausalLm model(cfg, rng);
  IncrementalDecoder q(model, 0, /*quantize_kv=*/true);
  q.prime({1, 2, 3, 4, 5});
  // int8 payload + one fp32 scale per K and per V row, per layer, per
  // position.
  const int64_t per_pos = cfg.n_layers * 2 * (cfg.kv_dim() + 4);
  EXPECT_EQ(q.kv_cache_bytes(), 5 * per_pos);
  IncrementalDecoder fp(model, 0, false);
  fp.prime({1, 2, 3, 4, 5});
  EXPECT_EQ(fp.kv_cache_bytes(), 5 * cfg.n_layers * 2 * cfg.kv_dim() * 4);
}

// Early-exit incremental generation must agree with greedily decoding from
// the full (non-cached) forward pass at the same fixed exit.
TEST(Decoder, EarlyExitGenerateAgreesWithFullForward) {
  const ModelConfig cfg = tiny_config();
  Rng rng(33);
  CausalLm model(cfg, rng);
  const std::vector<int64_t> prompt = {2, 7, 11};
  const int64_t n_new = 5;

  IncrementalDecoder dec(model, /*exit_layer=*/2);
  GenerateConfig g;
  g.max_new_tokens = n_new;
  g.temperature = 0.0f;
  g.exit_layer = 2;
  Rng srng(1);
  const auto got = dec.generate(prompt, g, srng);

  std::vector<int64_t> seq = prompt;
  std::vector<int64_t> want;
  for (int64_t i = 0; i < n_new; ++i) {
    const int64_t T = static_cast<int64_t>(seq.size());
    const Tensor logits = model.forward_eval(seq, 1, T, /*exit_layer=*/2);
    int64_t best = 0;
    for (int64_t v = 1; v < cfg.vocab; ++v) {
      if (logits[(T - 1) * cfg.vocab + v] > logits[(T - 1) * cfg.vocab + best]) best = v;
    }
    want.push_back(best);
    seq.push_back(best);
  }
  EXPECT_EQ(got, want);
}

TEST(Decoder, QuantizedKvUsesQuarterMemory) {
  const ModelConfig cfg = tiny_config();
  Rng rng(21);
  CausalLm model(cfg, rng);
  IncrementalDecoder fp(model, 0, false);
  IncrementalDecoder q(model, 0, true);
  fp.prime({1, 2, 3, 4, 5, 6, 7, 8});
  q.prime({1, 2, 3, 4, 5, 6, 7, 8});
  // int8 payload + one fp32 scale per vector vs fp32 payload.
  EXPECT_LT(q.kv_cache_bytes(), fp.kv_cache_bytes() / 3);
  EXPECT_GT(q.kv_cache_bytes(), 0);
}

// After adapting to a domain, generated continuations should follow the
// domain's preferred transitions far more often than chance.
TEST(Decoder, AdaptedModelGeneratesInDomain) {
  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  dc.seed = 5;
  const data::MarkovChain domain(dc);

  Rng rng(10);
  CausalLm model(tiny_config(), rng);
  core::TunerConfig tcfg = core::TunerConfig::vanilla();
  tcfg.optim.lr = 1e-2f;
  core::AdaptiveLayerTuner tuner(model, tcfg, Rng(11));
  Rng drng(12);
  for (int i = 0; i < 250; ++i) {
    tuner.step(data::sample_lm_batch(domain, 4, 12, drng));
  }

  IncrementalDecoder dec(model);
  GenerateConfig gcfg;
  gcfg.max_new_tokens = 12;
  gcfg.temperature = 0.7f;
  Rng srng(13);

  int64_t preferred = 0, total = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const auto prompt = domain.sample(4, srng);
    std::vector<int64_t> seq = prompt;
    const auto gen = dec.generate(prompt, gcfg, srng);
    seq.insert(seq.end(), gen.begin(), gen.end());
    for (size_t i = prompt.size(); i < seq.size(); ++i) {
      const std::vector<int64_t> ctx = {seq[i - 1]};
      if (domain.next_dist(ctx)[static_cast<size_t>(seq[i])] > 0.1f) ++preferred;
      ++total;
    }
  }
  // Chance would be branch/vocab = 12.5%; a trained model should be high.
  EXPECT_GT(static_cast<double>(preferred) / total, 0.5);
}

}  // namespace
}  // namespace edgellm::nn
