// Learning-rate schedule behaviour in the tuner.
#include <gtest/gtest.h>

#include "core/tuner.hpp"
#include "data/eval.hpp"
#include "test_util.hpp"

namespace edgellm::core {
namespace {

using edgellm::testing::tiny_config;


TEST(LrSchedule, ConstantByDefault) {
  Rng rng(1);
  nn::CausalLm model(tiny_config(), rng);
  TunerConfig cfg;
  cfg.optim.lr = 0.01f;
  AdaptiveLayerTuner tuner(model, cfg, Rng(2));
  EXPECT_FLOAT_EQ(tuner.scheduled_lr(0), 0.01f);
  EXPECT_FLOAT_EQ(tuner.scheduled_lr(1000), 0.01f);
}

TEST(LrSchedule, LinearWarmup) {
  Rng rng(2);
  nn::CausalLm model(tiny_config(), rng);
  TunerConfig cfg;
  cfg.optim.lr = 0.01f;
  cfg.warmup_iters = 10;
  AdaptiveLayerTuner tuner(model, cfg, Rng(2));
  EXPECT_FLOAT_EQ(tuner.scheduled_lr(0), 0.001f);
  EXPECT_FLOAT_EQ(tuner.scheduled_lr(4), 0.005f);
  EXPECT_FLOAT_EQ(tuner.scheduled_lr(9), 0.01f);
  EXPECT_FLOAT_EQ(tuner.scheduled_lr(50), 0.01f);  // no decay configured
}

TEST(LrSchedule, CosineDecayToFloor) {
  Rng rng(3);
  nn::CausalLm model(tiny_config(), rng);
  TunerConfig cfg;
  cfg.optim.lr = 0.01f;
  cfg.warmup_iters = 5;
  cfg.decay_iters = 20;
  cfg.min_lr_fraction = 0.1f;
  AdaptiveLayerTuner tuner(model, cfg, Rng(2));
  // At the start of decay: full lr. Half way: midpoint. End: floor.
  EXPECT_NEAR(tuner.scheduled_lr(5), 0.01f, 1e-6f);
  EXPECT_NEAR(tuner.scheduled_lr(15), 0.5f * (0.01f + 0.001f), 1e-5f);
  EXPECT_NEAR(tuner.scheduled_lr(25), 0.001f, 1e-6f);
  EXPECT_NEAR(tuner.scheduled_lr(500), 0.001f, 1e-6f);  // clamps at floor

  // Monotone non-increasing through the decay phase.
  float prev = 1.0f;
  for (int64_t i = 5; i <= 25; ++i) {
    const float lr = tuner.scheduled_lr(i);
    EXPECT_LE(lr, prev + 1e-7f);
    prev = lr;
  }
}

TEST(LrSchedule, AppliedDuringTraining) {
  Rng rng(4);
  nn::CausalLm model(tiny_config(), rng);
  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  dc.seed = 5;
  const data::MarkovChain domain(dc);

  TunerConfig cfg;
  cfg.optim.lr = 0.01f;
  cfg.warmup_iters = 4;
  cfg.decay_iters = 16;
  AdaptiveLayerTuner tuner(model, cfg, Rng(2));
  Rng drng(6);
  for (int i = 0; i < 25; ++i) {
    tuner.step(data::sample_lm_batch(domain, 2, 8, drng));
    // The optimizer's live lr must track the schedule at the step taken.
    EXPECT_FLOAT_EQ(tuner.optimizer().lr(), tuner.scheduled_lr(i));
  }
}

}  // namespace
}  // namespace edgellm::core
