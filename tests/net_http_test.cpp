// Loopback integration tests for the HTTP front door (src/net/server.hpp):
// real sockets against a real engine. The load-bearing claims pinned here:
//
//   - a streamed greedy completion over HTTP is byte-for-byte the token
//     sequence the JSONL path (and the IncrementalDecoder reference)
//     produces, and the final chunk is the same completion JSON;
//   - overload surfaces as structured 429/503 with every request answered;
//   - a client that disconnects mid-stream cancels its request through the
//     engine's cancel path, releasing its KV slot (acquired == released)
//     and keeping the request-conservation ledger exact — both for real
//     hangups and for ServeFaultInjector-drawn disconnects through the
//     same socket path;
//   - slowloris trickle and idle stalls hit the request deadline (408 or
//     close), and drain finishes in-flight streams before run() returns.
//
// Labelled `net` (and run under ASan/UBSan and TSan in CI): the server is
// single-threaded but the engine's sink callbacks cross threads into
// StreamState, which is exactly what TSan is here to watch.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/server.hpp"
#include "nn/decoder.hpp"
#include "runtime/fault.hpp"
#include "serve/engine.hpp"
#include "test_util.hpp"

namespace {

using namespace edgellm;
using edgellm::testing::tiny_config;

// --- tiny blocking client ---------------------------------------------------

/// A deliberately separate HTTP client: the test must not read the server's
/// output with the server's own parser.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~Client() { close(); }

  bool connected() const { return connected_; }
  int fd() const { return fd_; }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  bool send_raw(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool post(const std::string& target, const std::string& body) {
    return send_raw("POST " + target + " HTTP/1.1\r\nHost: t\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\n\r\n" + body);
  }
  bool get(const std::string& target) {
    return send_raw("GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
  }

  /// Blocks until `buf_` holds `needle`; false on EOF.
  bool read_until(const std::string& needle) {
    while (buf_.find(needle) == std::string::npos) {
      if (!read_more()) return false;
    }
    return true;
  }

  bool read_more() {
    char tmp[4096];
    const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
    if (n <= 0) return false;
    buf_.append(tmp, static_cast<size_t>(n));
    return true;
  }

  /// Reads until EOF (server closed); returns everything seen.
  std::string drain() {
    while (read_more()) {
    }
    return buf_;
  }

  struct Response {
    bool ok = false;  ///< head + body fully parsed
    int status = 0;
    std::string head;
    std::string body;  ///< dechunked when chunked
  };

  /// Parses one full response off the stream (Content-Length or chunked).
  Response response() {
    Response r;
    if (!read_until("\r\n\r\n")) return r;
    const size_t head_end = buf_.find("\r\n\r\n") + 4;
    r.head = buf_.substr(0, head_end);
    buf_.erase(0, head_end);
    if (r.head.rfind("HTTP/1.1 ", 0) != 0) return r;
    r.status = std::atoi(r.head.c_str() + 9);
    if (r.head.find("Transfer-Encoding: chunked") != std::string::npos) {
      while (true) {
        if (!read_until("\r\n")) return r;
        const long sz = std::strtol(buf_.c_str(), nullptr, 16);
        buf_.erase(0, buf_.find("\r\n") + 2);
        if (sz < 0) return r;
        while (buf_.size() < static_cast<size_t>(sz) + 2) {
          if (!read_more()) return r;
        }
        if (sz == 0) {
          buf_.erase(0, 2);
          break;
        }
        r.body.append(buf_, 0, static_cast<size_t>(sz));
        buf_.erase(0, static_cast<size_t>(sz) + 2);
      }
    } else {
      const size_t cl_at = r.head.find("Content-Length: ");
      if (cl_at == std::string::npos) return r;
      const long cl = std::strtol(r.head.c_str() + cl_at + 16, nullptr, 10);
      while (buf_.size() < static_cast<size_t>(cl)) {
        if (!read_more()) return r;
      }
      r.body = buf_.substr(0, static_cast<size_t>(cl));
      buf_.erase(0, static_cast<size_t>(cl));
    }
    r.ok = true;
    return r;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

/// Token ids out of a streamed x-ndjson body (every line but the last).
std::vector<int64_t> streamed_tokens(const std::string& body) {
  std::vector<int64_t> toks;
  size_t at = 0;
  std::vector<std::string> lines;
  while (at < body.size()) {
    const size_t nl = body.find('\n', at);
    if (nl == std::string::npos) break;
    lines.push_back(body.substr(at, nl - at));
    at = nl + 1;
  }
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    const size_t t = lines[i].find("\"token\": ");
    EXPECT_NE(t, std::string::npos) << lines[i];
    if (t != std::string::npos) toks.push_back(std::atoll(lines[i].c_str() + t + 9));
  }
  return toks;
}

std::string final_line(const std::string& body) {
  const size_t last_nl = body.find_last_of('\n', body.size() - 2);
  return body.substr(last_nl == std::string::npos ? 0 : last_nl + 1);
}

// --- harness ----------------------------------------------------------------

/// Model + engine + server on a background thread; drains on destruction.
struct Harness {
  explicit Harness(serve::EngineConfig ecfg = {}, net::ServerConfig scfg = {},
                   runtime::ServeFaultInjector* engine_fault = nullptr)
      : model(tiny_config(), rng), engine_cfg(std::move(ecfg)) {
    engine_cfg.fault = engine_fault;
    engine = std::make_unique<serve::ServeEngine>(model, engine_cfg);
    server = std::make_unique<net::HttpServer>(*engine, scfg);
    thread = std::thread([this] { server->run(); });
  }

  ~Harness() { stop(); }

  void stop() {
    if (thread.joinable()) {
      server->begin_drain();
      thread.join();
      engine->shutdown();
    }
  }

  int port() const { return server->port(); }

  Rng rng{40};
  nn::CausalLm model;
  serve::EngineConfig engine_cfg;
  std::unique_ptr<serve::ServeEngine> engine;
  std::unique_ptr<net::HttpServer> server;
  std::thread thread;
};

std::vector<int64_t> reference_greedy(nn::CausalLm& model, const std::vector<int64_t>& prompt,
                                      int64_t n_new) {
  nn::IncrementalDecoder dec(model, 0);
  nn::GenerateConfig g;
  g.max_new_tokens = n_new;
  g.temperature = 0.0f;
  Rng r(0);
  return dec.generate(prompt, g, r);
}

std::string completion_body(int64_t id, const std::vector<int64_t>& prompt, int64_t n_new) {
  std::string b = "{\"id\": " + std::to_string(id) + ", \"prompt\": [";
  for (size_t i = 0; i < prompt.size(); ++i) {
    if (i > 0) b += ", ";
    b += std::to_string(prompt[i]);
  }
  return b + "], \"max_new_tokens\": " + std::to_string(n_new) + ", \"temperature\": 0.0}";
}

// --- tests ------------------------------------------------------------------

TEST(NetHttp, StreamedGreedyMatchesReference) {
  Harness h;
  const std::vector<int64_t> prompt = {1, 2, 3};
  const std::vector<int64_t> want = reference_greedy(h.model, prompt, 6);

  Client c(h.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.post("/v1/completions", completion_body(7, prompt, 6)));
  const Client::Response r = c.response();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.head.find("Transfer-Encoding: chunked"), std::string::npos);
  EXPECT_EQ(streamed_tokens(r.body), want);
  // The final chunk is the same completion object the JSONL mode prints.
  const std::string fin = final_line(r.body);
  EXPECT_NE(fin.find("\"id\": 7"), std::string::npos) << fin;
  EXPECT_NE(fin.find("\"status\": \"ok\""), std::string::npos) << fin;
  for (const int64_t t : want) {
    EXPECT_NE(fin.find(std::to_string(t)), std::string::npos);
  }
}

TEST(NetHttp, KeepAliveServesSequentialRequests) {
  Harness h;
  Client c(h.port());
  ASSERT_TRUE(c.connected());
  for (int64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(c.post("/v1/completions", completion_body(id, {2, 4}, 4)));
    const Client::Response r = c.response();
    ASSERT_TRUE(r.ok) << "request " << id;
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(streamed_tokens(r.body).size(), 4u);
  }
}

TEST(NetHttp, HealthzAndMetrics) {
  Harness h;
  Client c(h.port());
  ASSERT_TRUE(c.get("/healthz"));
  Client::Response r = c.response();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"ok\""), std::string::npos);

  ASSERT_TRUE(c.get("/metrics"));
  r = c.response();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("net/accepted"), std::string::npos);

  ASSERT_TRUE(c.get("/metrics?format=csv"));
  r = c.response();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body.rfind("kind,name,value", 0), 0u);
}

TEST(NetHttp, ErrorStatuses) {
  Harness h;
  {
    Client c(h.port());
    ASSERT_TRUE(c.get("/nope"));
    const Client::Response r = c.response();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.status, 404);
  }
  {
    Client c(h.port());
    ASSERT_TRUE(c.get("/v1/completions"));
    const Client::Response r = c.response();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.status, 405);
  }
  {
    // Shared validation with the JSONL front: same parser, same rejection.
    Client c(h.port());
    ASSERT_TRUE(c.post("/v1/completions", "{\"prompt\": \"not an array\"}"));
    const Client::Response r = c.response();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.status, 400);
    EXPECT_NE(r.body.find("\"error\""), std::string::npos);
  }
  {
    // A framing-level parse failure answers and then hangs up.
    Client c(h.port());
    ASSERT_TRUE(c.send_raw("POST /v1/completions HTTP/1.1\r\nContent-Length: 3\r\n"
                           "Transfer-Encoding: chunked\r\n\r\n"));
    const Client::Response r = c.response();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.status, 400);
    EXPECT_NE(r.head.find("Connection: close"), std::string::npos);
  }
}

TEST(NetHttp, OverloadShedsWithStructured429) {
  serve::EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.max_batch = 1;
  ecfg.queue_capacity = 4;
  ecfg.admission.shed_policy = serve::ShedPolicy::kRejectNew;
  ecfg.admission.shed_queue_ratio = 0.25;  // shed past depth 1
  Harness h(ecfg);

  // 2x-ish overload: far more concurrent requests than a 1-slot batch with
  // a shed-at-1 queue can hold. Every client must still get an answer.
  constexpr int kClients = 12;
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      Client c(h.port());
      ASSERT_TRUE(c.connected());
      ASSERT_TRUE(c.post("/v1/completions", completion_body(100 + i, {1, 2}, 8)));
      const Client::Response r = c.response();
      ASSERT_TRUE(r.ok) << "client " << i << " got no complete response";
      if (r.status == 200) {
        ++ok;
      } else if (r.status == 429 || r.status == 503) {
        // Structured shed: the completion object (with the shed reason)
        // comes back as the JSON body.
        EXPECT_NE(r.body.find("\"status\""), std::string::npos) << r.body;
        ++shed;
      } else {
        ++other;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(shed.load(), 0) << "overload never engaged the shed policy over HTTP";
  EXPECT_EQ(ok.load() + shed.load(), kClients);

  h.stop();
  const serve::EngineMetrics m = h.engine->metrics();
  EXPECT_EQ(m.submitted,
            m.completed + m.rejected + m.cancelled + m.timed_out + m.shed + m.expired + m.failed);
  const obs::MetricsSnapshot snap = h.engine->registry().snapshot();
  EXPECT_EQ(snap.counter("kv/acquired"), snap.counter("kv/released"));
}

TEST(NetHttp, ClientDisconnectMidStreamCancels) {
  // Worker stalls stretch each decode tick so the client's hangup reliably
  // lands while its stream is in flight.
  runtime::ServeFaultPlan plan;
  plan.worker_stall_prob = 1.0;
  plan.worker_stall_ms = 15.0;
  runtime::ServeFaultInjector fault(plan);
  serve::EngineConfig ecfg;
  ecfg.threads = 1;
  Harness h(ecfg, {}, &fault);

  {
    Client c(h.port());
    ASSERT_TRUE(c.connected());
    ASSERT_TRUE(c.post("/v1/completions", completion_body(1, {1, 2, 3}, 12)));
    // Wait for the stream head + at least one token chunk, then vanish.
    ASSERT_TRUE(c.read_until("\"token\""));
    c.close();
  }

  // The hangup must cancel through the engine (slot freed at next tick),
  // and drain must wait out the cancelled future.
  h.stop();
  const serve::EngineMetrics m = h.engine->metrics();
  EXPECT_GE(m.cancelled, 1);
  EXPECT_EQ(m.submitted,
            m.completed + m.rejected + m.cancelled + m.timed_out + m.shed + m.expired + m.failed);
  const obs::MetricsSnapshot snap = h.engine->registry().snapshot();
  EXPECT_EQ(snap.counter("kv/acquired"), snap.counter("kv/released"));
  EXPECT_GE(snap.counter("net/client_disconnects"), 1);
}

TEST(NetHttp, InjectedDisconnectsThroughSocketPath) {
  // ServeFaultInjector wired into the *server*: disconnect faults fire on
  // the real socket path (hard close mid-stream), exercising the same
  // cancel/KV-release machinery as a genuine vanished client. Worker
  // stalls (same injector, engine side) keep the decode in flight long
  // enough that the cancel observably lands before completion.
  // Separate injectors: the engine only stalls (the disconnect_prob draw
  // must not fire inside the scheduler, where it would cancel before any
  // token ever reaches a socket).
  runtime::ServeFaultPlan disconnect_plan;
  disconnect_plan.disconnect_prob = 1.0;
  runtime::ServeFaultInjector socket_fault(disconnect_plan);
  runtime::ServeFaultPlan stall_plan;
  stall_plan.worker_stall_prob = 1.0;
  stall_plan.worker_stall_ms = 15.0;
  runtime::ServeFaultInjector engine_fault(stall_plan);
  net::ServerConfig scfg;
  scfg.fault = &socket_fault;
  serve::EngineConfig ecfg;
  ecfg.threads = 1;
  Harness h(ecfg, scfg, &engine_fault);

  Client c(h.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.post("/v1/completions", completion_body(1, {1, 2}, 8)));
  // The injected disconnect truncates the stream: EOF, no final chunk.
  const std::string seen = c.drain();
  EXPECT_EQ(seen.find("\"status\": \"ok\""), std::string::npos);

  h.stop();
  const serve::EngineMetrics m = h.engine->metrics();
  EXPECT_GE(m.cancelled, 1);
  EXPECT_EQ(m.submitted,
            m.completed + m.rejected + m.cancelled + m.timed_out + m.shed + m.expired + m.failed);
  const obs::MetricsSnapshot snap = h.engine->registry().snapshot();
  EXPECT_EQ(snap.counter("kv/acquired"), snap.counter("kv/released"));
  EXPECT_GE(snap.counter("net/injected_disconnects"), 1);
  EXPECT_GE(socket_fault.disconnects(), 1);
}

TEST(NetHttp, SlowlorisHitsRequestDeadline) {
  net::ServerConfig scfg;
  scfg.idle_timeout_ms = 150.0;
  Harness h({}, scfg);

  Client c(h.port());
  ASSERT_TRUE(c.connected());
  // Trickle a request that never finishes; the deadline runs from the
  // first byte, so this must come back 408 and close.
  ASSERT_TRUE(c.send_raw("POST /v1/completions HTTP/1.1\r\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(c.send_raw("Content-Length: 10\r\n"));
  const Client::Response r = c.response();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 408);
  EXPECT_NE(r.head.find("Connection: close"), std::string::npos);

  h.stop();
  const obs::MetricsSnapshot snap = h.engine->registry().snapshot();
  EXPECT_GE(snap.counter("net/timeouts"), 1);
}

TEST(NetHttp, IdleKeepAliveConnectionIsReaped) {
  net::ServerConfig scfg;
  scfg.idle_timeout_ms = 100.0;
  Harness h({}, scfg);

  Client c(h.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.get("/healthz"));
  ASSERT_TRUE(c.response().ok);
  // Now idle past the deadline: the server must close (EOF), not leak the
  // session forever.
  char tmp[16];
  const ssize_t n = ::recv(c.fd(), tmp, sizeof(tmp), 0);
  EXPECT_EQ(n, 0);
}

TEST(NetHttp, DrainFinishesInFlightStreamsAndRefusesNew) {
  runtime::ServeFaultPlan plan;
  plan.worker_stall_prob = 1.0;
  plan.worker_stall_ms = 10.0;
  runtime::ServeFaultInjector fault(plan);
  serve::EngineConfig ecfg;
  ecfg.threads = 1;
  Harness h(ecfg, {}, &fault);
  const std::vector<int64_t> want = reference_greedy(h.model, {1, 2, 3}, 8);

  Client c(h.port());
  ASSERT_TRUE(c.connected());
  ASSERT_TRUE(c.post("/v1/completions", completion_body(5, {1, 2, 3}, 8)));
  ASSERT_TRUE(c.read_until("\"token\""));  // stream is live

  h.server->begin_drain();
  // The in-flight stream must complete — correctly — while new work is
  // refused at the (now closed) listener.
  const Client::Response r = c.response();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(streamed_tokens(r.body), want);
  EXPECT_NE(final_line(r.body).find("\"status\": \"ok\""), std::string::npos);

  h.thread.join();
  h.engine->shutdown();
  Client late(h.port());
  EXPECT_FALSE(late.connected());

  const serve::EngineMetrics m = h.engine->metrics();
  EXPECT_EQ(m.completed, 1);
  const obs::MetricsSnapshot snap = h.engine->registry().snapshot();
  EXPECT_EQ(snap.counter("kv/acquired"), snap.counter("kv/released"));
}

TEST(NetHttp, PipelinedRequestsAnswerInOrder) {
  Harness h;
  Client c(h.port());
  ASSERT_TRUE(c.connected());
  // Two completions back to back in one write; responses must come back in
  // order, each a complete stream.
  std::string wire;
  for (int64_t id = 1; id <= 2; ++id) {
    const std::string body = completion_body(id, {3, 1}, 3);
    wire += "POST /v1/completions HTTP/1.1\r\nHost: t\r\nContent-Length: " +
            std::to_string(body.size()) + "\r\n\r\n" + body;
  }
  ASSERT_TRUE(c.send_raw(wire));
  for (int64_t id = 1; id <= 2; ++id) {
    const Client::Response r = c.response();
    ASSERT_TRUE(r.ok) << "pipelined response " << id;
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(final_line(r.body).find("\"id\": " + std::to_string(id)), std::string::npos);
  }
}

TEST(NetHttp, ExpectContinueInterjected) {
  Harness h;
  Client c(h.port());
  ASSERT_TRUE(c.connected());
  const std::string body = completion_body(9, {2, 2}, 2);
  ASSERT_TRUE(c.send_raw("POST /v1/completions HTTP/1.1\r\nExpect: 100-continue\r\n"
                         "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n"));
  // Interim response first...
  Client::Response r100 = c.response();
  ASSERT_TRUE(r100.head.rfind("HTTP/1.1 100", 0) == 0) << r100.head;
  // ...then the body, then the real streamed response.
  ASSERT_TRUE(c.send_raw(body));
  const Client::Response r = c.response();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
}

}  // namespace
