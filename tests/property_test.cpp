// Cross-module property sweeps (parameterized gtest): invariants that must
// hold across the whole configuration space, not just hand-picked points.
#include <gtest/gtest.h>

#include <cmath>

#include "core/luc.hpp"
#include "core/voting.hpp"
#include "data/corpus.hpp"
#include "hw/search.hpp"
#include "quant/quant.hpp"
#include "test_util.hpp"

namespace edgellm {
namespace {

// ---------------------------------------------------------------------------
// Schedule cost model invariants across the whole (order, tile, db) space.
// ---------------------------------------------------------------------------

struct GemmShape {
  int64_t m, n, k;
  int bits;
  float sparsity;
};

class ScheduleInvariants : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleInvariants, HoldForAllSchedules) {
  static const GemmShape shapes[] = {
      {64, 64, 64, 16, 0.0f},  {128, 32, 96, 8, 0.0f},  {17, 33, 65, 4, 0.5f},
      {256, 256, 64, 2, 0.7f}, {8, 512, 128, 16, 0.3f},
  };
  const GemmShape& sh = shapes[GetParam()];
  hw::GemmWorkload g;
  g.name = "g";
  g.m = sh.m;
  g.n = sh.n;
  g.k = sh.k;
  g.weight_bits = sh.bits;
  g.sparsity = sh.sparsity;
  g.weights_resident_eligible = true;
  const hw::DeviceModel dev = hw::default_edge_device();

  // Compulsory traffic: read A once in its stored form + write C once.
  const double compulsory_a = static_cast<double>(sh.m) * sh.k * 2.0;
  const double compulsory_c = static_cast<double>(sh.m) * sh.n * 2.0;

  for (hw::LoopOrder order : hw::kAllLoopOrders) {
    for (int64_t tile : {8, 16, 64}) {
      for (bool db : {false, true}) {
        hw::Schedule s;
        s.tile_m = s.tile_n = s.tile_k = tile;
        s.order = order;
        s.double_buffer = db;
        const hw::ScheduleCost c = hw::evaluate_schedule(dev, g, s, dev.sram_bytes);
        if (!c.feasible) continue;
        EXPECT_GE(c.dram_bytes, compulsory_a + compulsory_c - 1e-6)
            << hw::to_string(order) << " tile " << tile;
        EXPECT_LE(c.utilization, 1.0 + 1e-9);
        EXPECT_GE(c.cycles, c.compute_cycles - 1e-9);
        EXPECT_GE(c.cycles, db ? c.dram_cycles - 1e-9 : 0.0);
        EXPECT_GT(c.energy_pj, 0.0);
        // Double buffering can only help latency at equal tiles/order.
        if (db) {
          hw::Schedule serial = s;
          serial.double_buffer = false;
          const hw::ScheduleCost cs = hw::evaluate_schedule(dev, g, serial, dev.sram_bytes);
          if (cs.feasible) {
            EXPECT_LE(c.cycles, cs.cycles + 1e-9);
          }
        }
        // Pinning can only reduce DRAM traffic.
        hw::Schedule pinned = s;
        pinned.pin_weights = true;
        const hw::ScheduleCost cp = hw::evaluate_schedule(dev, g, pinned, dev.sram_bytes);
        if (cp.feasible) {
          EXPECT_LE(cp.dram_bytes, c.dram_bytes + 1e-9);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ScheduleInvariants, ::testing::Range(0, 5));

TEST(ScheduleInvariants, SearchedNeverWorseThanAnyFixedPoint) {
  const hw::DeviceModel dev = hw::default_edge_device();
  const hw::SearchConfig cfg;
  hw::GemmWorkload g;
  g.name = "g";
  g.m = 96;
  g.n = 160;
  g.k = 48;
  const hw::GemmPlan best = hw::search_gemm(dev, g, dev.sram_bytes, cfg);
  for (hw::LoopOrder order : hw::kAllLoopOrders) {
    hw::Schedule s;
    s.tile_m = s.tile_n = s.tile_k = 32;
    s.order = order;
    const hw::ScheduleCost c = hw::evaluate_schedule(dev, g, s, dev.sram_bytes);
    if (c.feasible) {
      EXPECT_LE(best.cost.cycles, c.cycles + 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// Weight storage format properties.
// ---------------------------------------------------------------------------

class WeightBytes : public ::testing::TestWithParam<std::tuple<int, float>> {};

TEST_P(WeightBytes, TrafficScaleConsistent) {
  const auto [bits, sparsity] = GetParam();
  hw::GemmWorkload g;
  g.m = 32;
  g.n = 64;
  g.k = 128;
  g.weight_bits = bits;
  g.sparsity = sparsity;
  for (bool structured : {false, true}) {
    g.structured = structured;
    const double dense = 64.0 * 128.0 * bits / 8.0;
    EXPECT_LE(g.weight_bytes(), dense + 1e-9);
    EXPECT_LE(g.weight_traffic_scale(), 1.0 + 1e-9);
    EXPECT_GT(g.weight_traffic_scale(), 0.0);
    if (structured && sparsity > 0.0f) {
      EXPECT_NEAR(g.weight_bytes(), dense * (1.0 - sparsity), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BitsAndSparsity, WeightBytes,
                         ::testing::Combine(::testing::Values(2, 4, 8, 16),
                                            ::testing::Values(0.0f, 0.3f, 0.5f, 0.9f)));

// ---------------------------------------------------------------------------
// LUC budget sweep: feasibility and monotonicity of the predicted loss.
// ---------------------------------------------------------------------------

core::SensitivityProfile sweep_profile() {
  core::SensitivityProfile prof;
  for (int i = 0; i < 8; ++i) {
    core::LayerSensitivity s;
    s.layer = i;
    const float scale = 0.1f + 0.4f * static_cast<float>((i * 37) % 5);
    for (int b : {2, 4, 8}) s.bit_delta[b] = scale * (8.0f - b);
    for (float p : {0.0f, 0.5f}) s.prune_delta[p] = scale * p;
    prof.layers.push_back(std::move(s));
  }
  return prof;
}

class LucBudgetSweep : public ::testing::TestWithParam<double> {};

TEST_P(LucBudgetSweep, MeetsBudgetAndDpDominatesGreedy) {
  const double budget = GetParam();
  core::SensitivityConfig cands;
  cands.bit_candidates = {2, 4, 8};
  cands.prune_candidates = {0.0f, 0.5f};
  const core::SensitivityProfile prof = sweep_profile();

  const core::LucPolicy pg =
      core::search_luc_policy(prof, cands, {budget, core::LucConfig::Search::kGreedy});
  const core::LucPolicy pd =
      core::search_luc_policy(prof, cands, {budget, core::LucConfig::Search::kExactDp});
  EXPECT_LE(pg.avg_effective_bits(), budget + 1e-9);
  EXPECT_LE(pd.avg_effective_bits(), budget + 1e-9);
  EXPECT_LE(pd.predicted_delta, pg.predicted_delta + 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Budgets, LucBudgetSweep,
                         ::testing::Values(1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0));

TEST(LucBudgetSweep, PredictedDeltaMonotoneInBudget) {
  core::SensitivityConfig cands;
  cands.bit_candidates = {2, 4, 8};
  cands.prune_candidates = {0.0f, 0.5f};
  const core::SensitivityProfile prof = sweep_profile();
  float prev = 1e9f;
  for (double budget : {1.5, 2.0, 3.0, 4.0, 6.0, 8.0}) {
    const core::LucPolicy p =
        core::search_luc_policy(prof, cands, {budget, core::LucConfig::Search::kExactDp});
    EXPECT_LE(p.predicted_delta, prev + 1e-5f) << "budget " << budget;
    prev = p.predicted_delta;
  }
}

TEST(LucBudgetSweep, UnreachableBudgetThrows) {
  core::SensitivityConfig cands;
  cands.bit_candidates = {4, 8};
  cands.prune_candidates = {0.0f};
  const core::SensitivityProfile prof = sweep_profile();
  EXPECT_THROW(
      core::search_luc_policy(prof, cands, {1.0, core::LucConfig::Search::kGreedy}),
      std::invalid_argument);
  EXPECT_THROW(
      core::search_luc_policy(prof, cands, {1.0, core::LucConfig::Search::kExactDp}),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Voter sweep across modes and temperatures.
// ---------------------------------------------------------------------------

class VoterSweep
    : public ::testing::TestWithParam<std::tuple<core::VotingMode, float>> {};

TEST_P(VoterSweep, WellFormedAcrossConfigs) {
  const auto [mode, temp] = GetParam();
  Rng rng(17);
  nn::CausalLm model(edgellm::testing::tiny_config(), rng);
  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  dc.seed = 7;
  const data::MarkovChain domain(dc);
  Rng drng(18);
  std::vector<data::LmBatch> calib = {data::sample_lm_batch(domain, 2, 8, drng)};
  std::vector<data::LmBatch> eval = {data::sample_lm_batch(domain, 2, 8, drng)};

  core::ExitVoter voter(model, {mode, temp});
  voter.calibrate(calib);
  double total = 0.0;
  for (float w : voter.weights()) {
    EXPECT_GE(w, 0.0f);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-5);
  const float loss = voter.voted_loss(eval);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndTemps, VoterSweep,
    ::testing::Combine(::testing::Values(core::VotingMode::kBestSingle,
                                         core::VotingMode::kMajority,
                                         core::VotingMode::kCalibratedWeight,
                                         core::VotingMode::kEntropyAdaptive),
                       ::testing::Values(0.1f, 0.5f, 2.0f)));

// ---------------------------------------------------------------------------
// Markov chain sweep across vocab sizes and orders.
// ---------------------------------------------------------------------------

class MarkovSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MarkovSweep, DistributionsWellFormed) {
  const auto [vocab, order] = GetParam();
  data::MarkovChain::Config cfg;
  cfg.vocab = vocab;
  cfg.order = order;
  cfg.branch = 3;
  cfg.mass = 0.8f;
  cfg.seed = 23;
  const data::MarkovChain chain(cfg);

  Rng rng(24);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int64_t> ctx;
    for (int i = 0; i < order; ++i) ctx.push_back(rng.uniform_int(0, vocab - 1));
    const auto dist = chain.next_dist(ctx);
    ASSERT_EQ(static_cast<int>(dist.size()), vocab);
    double total = 0.0;
    for (float p : dist) {
      EXPECT_GT(p, 0.0f);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
    EXPECT_EQ(dist, chain.next_dist(ctx));  // deterministic
  }
  const auto stream = chain.sample(100, rng);
  EXPECT_EQ(stream.size(), 100u);
  for (int64_t t : stream) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, vocab);
  }
}

INSTANTIATE_TEST_SUITE_P(VocabAndOrder, MarkovSweep,
                         ::testing::Combine(::testing::Values(8, 32, 128),
                                            ::testing::Values(1, 2, 4)));

// ---------------------------------------------------------------------------
// Fake-quant idempotence across the full spec space.
// ---------------------------------------------------------------------------

class QuantIdempotence
    : public ::testing::TestWithParam<std::tuple<int, quant::Granularity, bool>> {};

TEST_P(QuantIdempotence, DoubleQuantIsIdentity) {
  const auto [bits, gran, symmetric] = GetParam();
  Rng rng(31);
  const Tensor w = randn({12, 20}, rng);
  quant::QuantSpec spec;
  spec.bits = bits;
  spec.granularity = gran;
  spec.symmetric = symmetric;
  spec.group_size = 8;
  const Tensor once = quant::fake_quant(w, spec);
  const Tensor twice = quant::fake_quant(once, spec);
  EXPECT_TRUE(once.allclose(twice, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Specs, QuantIdempotence,
    ::testing::Combine(::testing::Values(2, 3, 4, 8),
                       ::testing::Values(quant::Granularity::kPerTensor,
                                         quant::Granularity::kPerRow,
                                         quant::Granularity::kGrouped),
                       ::testing::Bool()));

}  // namespace
}  // namespace edgellm
