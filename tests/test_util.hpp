// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/decoder.hpp"
#include "nn/model.hpp"
#include "nn/module.hpp"
#include "serve/engine.hpp"

namespace edgellm::testing {

/// A tiny model config that keeps tests fast.
inline nn::ModelConfig tiny_config() {
  nn::ModelConfig cfg;
  cfg.vocab = 24;
  cfg.d_model = 16;
  cfg.n_layers = 3;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.max_seq = 16;
  cfg.exit_layers = {1, 2, 3};
  return cfg;
}

/// Central-difference gradient check: after the caller has run forward +
/// backward once (filling p->grad), this verifies a sample of analytic
/// gradient entries against (L(p+h) - L(p-h)) / 2h.
///
/// `loss_fn` must recompute the scalar loss from scratch at the param's
/// current value.
inline void check_param_grad(nn::Param& p, const std::function<float()>& loss_fn,
                             int64_t max_checks = 12, float h = 1e-3f, float tol = 2e-2f) {
  const int64_t n = p.value.numel();
  const int64_t stride = std::max<int64_t>(1, n / max_checks);
  for (int64_t i = 0; i < n; i += stride) {
    const float orig = p.value[i];
    p.value[i] = orig + h;
    const float lp = loss_fn();
    p.value[i] = orig - h;
    const float lm = loss_fn();
    p.value[i] = orig;
    const float numeric = (lp - lm) / (2.0f * h);
    const float analytic = p.grad[i];
    const float scale = std::max({1.0f, std::fabs(numeric), std::fabs(analytic)});
    EXPECT_NEAR(analytic / scale, numeric / scale, tol)
        << p.name << " index " << i << " analytic=" << analytic << " numeric=" << numeric;
  }
}

// --- Minimal recursive-descent JSON parser ----------------------------------
//
// Just enough JSON to validate the exporters' output (obs trace + metrics
// snapshots) without a third-party dependency: objects, arrays, strings
// (no escapes beyond \" \\ \/ \n \t), numbers, booleans, null. Throws
// std::runtime_error with an offset on malformed input.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  bool has(const std::string& key) const { return is_object() && object.count(key) > 0; }
  const JsonValue& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("JsonValue: missing key " + key);
    return object.at(key);
  }
};

class JsonParser {
 public:
  static JsonValue parse(const std::string& text) {
    JsonParser p(text);
    JsonValue v = p.value();
    p.skip_ws();
    if (p.pos_ != text.size()) p.fail("trailing characters");
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : s_(text) {}

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at offset " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null_value();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object[key.string] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        if (e == 'n') v.string.push_back('\n');
        else if (e == 't') v.string.push_back('\t');
        else if (e == '"' || e == '\\' || e == '/') v.string.push_back(e);
        else fail("unsupported escape");
        continue;
      }
      v.string.push_back(c);
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue null_value() {
    if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return JsonValue{};
  }

  JsonValue number() {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

/// Validates the minimal Chrome trace-event schema the obs exporter
/// promises: top-level object with a "traceEvents" array whose entries all
/// carry a string "name", a one-char "ph" in {B, E, C}, numeric "pid",
/// "tid" and "ts", and (for counters) an "args" object. Returns the parsed
/// document so tests can make further assertions; throws on any violation.
inline JsonValue validate_chrome_trace(const std::string& json) {
  const JsonValue doc = JsonParser::parse(json);
  if (!doc.is_object()) throw std::runtime_error("trace: top level must be an object");
  if (!doc.has("traceEvents") || !doc.at("traceEvents").is_array()) {
    throw std::runtime_error("trace: missing traceEvents array");
  }
  for (const JsonValue& e : doc.at("traceEvents").array) {
    if (!e.is_object()) throw std::runtime_error("trace: event must be an object");
    if (!e.has("name") || !e.at("name").is_string() || e.at("name").string.empty()) {
      throw std::runtime_error("trace: event needs a non-empty string name");
    }
    if (!e.has("ph") || !e.at("ph").is_string() || e.at("ph").string.size() != 1 ||
        std::string("BEC").find(e.at("ph").string) == std::string::npos) {
      throw std::runtime_error("trace: event ph must be one of B, E, C");
    }
    for (const char* k : {"pid", "tid", "ts"}) {
      if (!e.has(k) || !e.at(k).is_number()) {
        throw std::runtime_error(std::string("trace: event needs numeric ") + k);
      }
    }
    if (e.at("ph").string == "C" && (!e.has("args") || !e.at("args").is_object())) {
      throw std::runtime_error("trace: counter event needs an args object");
    }
  }
  return doc;
}

// --- Serve-engine differential scaffolding ----------------------------------
//
// The shared build-tiny-model -> submit-batch -> compare-completions kit
// used by serve_test, kv_paged_test, serve_fault_test and speculative_test.
// The load-bearing convention: every prompt/row generator is deterministic
// in (index, salt), so any test can reproduce another's sequences exactly.

/// Deterministic prompt tokens: (i*5 + 2 + salt) % vocab.
inline std::vector<int64_t> seq_tokens(int64_t n, int64_t vocab, int64_t salt = 0) {
  std::vector<int64_t> t(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) t[static_cast<size_t>(i)] = (i * 5 + 2 + salt) % vocab;
  return t;
}

inline std::vector<int64_t> iota_tokens(int64_t n) {
  std::vector<int64_t> t(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) t[static_cast<size_t>(i)] = i;
  return t;
}

/// Deterministic per-(position, dim) row content so tests can recognise
/// which sequence wrote a cached row.
inline void fill_row(int64_t pos, int64_t kv_dim, int64_t salt, std::vector<float>& k,
                     std::vector<float>& v) {
  k.resize(static_cast<size_t>(kv_dim));
  v.resize(static_cast<size_t>(kv_dim));
  for (int64_t d = 0; d < kv_dim; ++d) {
    k[static_cast<size_t>(d)] = std::sin(0.05f * static_cast<float>(pos * kv_dim + d + salt));
    v[static_cast<size_t>(d)] = std::cos(0.07f * static_cast<float>(pos * kv_dim + d + salt));
  }
}

/// Appends `n` positions (starting at the view's current length) to every
/// layer, the way one decode tick per position would.
inline void feed_positions(nn::KvSequenceView& kv, int64_t n, int64_t depth, int64_t salt = 0) {
  std::vector<float> k, v;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t pos = kv.positions(0);
    fill_row(pos, kv.kv_dim(), salt, k, v);
    for (int64_t l = 0; l < depth; ++l) kv.append(l, k.data(), v.data());
  }
}

inline serve::KvPoolConfig pool_cfg(int64_t slots, int64_t budget, bool quantize = false,
                                    int64_t kv_dim = 16) {
  serve::KvPoolConfig cfg;
  cfg.n_slots = slots;
  cfg.kv_dim = kv_dim;
  cfg.byte_budget = budget;
  cfg.quantize = quantize;
  return cfg;
}

inline serve::PagedKvConfig paged_cfg(int64_t block_tokens, int64_t n_layers, int64_t kv_dim,
                                      int64_t byte_budget, obs::Registry* reg = nullptr,
                                      bool quantize = false) {
  serve::PagedKvConfig cfg;
  cfg.block_tokens = block_tokens;
  cfg.n_layers = n_layers;
  cfg.kv_dim = kv_dim;
  cfg.byte_budget = byte_budget;
  cfg.quantize = quantize;
  cfg.registry = reg;
  return cfg;
}

inline serve::EngineConfig engine_cfg(int64_t threads, int64_t max_batch = 8) {
  serve::EngineConfig cfg;
  cfg.max_batch = max_batch;
  cfg.threads = threads;
  return cfg;
}

inline serve::EngineConfig paged_engine_cfg(int64_t threads, int64_t block_tokens = 4) {
  serve::EngineConfig cfg;
  cfg.threads = threads;
  cfg.kv_paged = true;
  cfg.kv_block_tokens = block_tokens;
  return cfg;
}

inline serve::Request greedy_request(int64_t id, std::vector<int64_t> prompt, int64_t n_new,
                                     serve::ExitPolicy policy = serve::ExitPolicy::kFinal,
                                     int64_t exit_layer = 0) {
  serve::Request r;
  r.id = id;
  r.prompt = std::move(prompt);
  r.max_new_tokens = n_new;
  r.temperature = 0.0f;
  r.exit_policy = policy;
  r.exit_layer = exit_layer;
  return r;
}

/// Greedy reference continuation through IncrementalDecoder.
inline std::vector<int64_t> reference_greedy(nn::CausalLm& model,
                                             const std::vector<int64_t>& prompt, int64_t n_new,
                                             int64_t exit_layer = 0) {
  nn::IncrementalDecoder dec(model, exit_layer);
  nn::GenerateConfig g;
  g.max_new_tokens = n_new;
  g.temperature = 0.0f;
  g.exit_layer = exit_layer;
  Rng rng(0);
  return dec.generate(prompt, g, rng);
}

/// Stages every request while the engine is parked (so all of them join one
/// deterministic batch on resume), then waits for and returns the
/// completions in request order.
inline std::vector<serve::Completion> serve_batch(serve::ServeEngine& engine,
                                                  std::vector<serve::Request> reqs) {
  engine.pause();
  std::vector<std::future<serve::Completion>> futs;
  futs.reserve(reqs.size());
  for (auto& r : reqs) futs.push_back(engine.submit(std::move(r)));
  engine.resume();
  std::vector<serve::Completion> out;
  out.reserve(futs.size());
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

}  // namespace edgellm::testing
