// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <functional>

#include "nn/model.hpp"
#include "nn/module.hpp"

namespace edgellm::testing {

/// A tiny model config that keeps tests fast.
inline nn::ModelConfig tiny_config() {
  nn::ModelConfig cfg;
  cfg.vocab = 24;
  cfg.d_model = 16;
  cfg.n_layers = 3;
  cfg.n_heads = 2;
  cfg.d_ff = 32;
  cfg.max_seq = 16;
  cfg.exit_layers = {1, 2, 3};
  return cfg;
}

/// Central-difference gradient check: after the caller has run forward +
/// backward once (filling p->grad), this verifies a sample of analytic
/// gradient entries against (L(p+h) - L(p-h)) / 2h.
///
/// `loss_fn` must recompute the scalar loss from scratch at the param's
/// current value.
inline void check_param_grad(nn::Param& p, const std::function<float()>& loss_fn,
                             int64_t max_checks = 12, float h = 1e-3f, float tol = 2e-2f) {
  const int64_t n = p.value.numel();
  const int64_t stride = std::max<int64_t>(1, n / max_checks);
  for (int64_t i = 0; i < n; i += stride) {
    const float orig = p.value[i];
    p.value[i] = orig + h;
    const float lp = loss_fn();
    p.value[i] = orig - h;
    const float lm = loss_fn();
    p.value[i] = orig;
    const float numeric = (lp - lm) / (2.0f * h);
    const float analytic = p.grad[i];
    const float scale = std::max({1.0f, std::fabs(numeric), std::fabs(analytic)});
    EXPECT_NEAR(analytic / scale, numeric / scale, tol)
        << p.name << " index " << i << " analytic=" << analytic << " numeric=" << numeric;
  }
}

}  // namespace edgellm::testing
