// Quantized-state AdamW: convergence parity with fp32 AdamW at ~4x less
// optimizer memory.
#include <gtest/gtest.h>

#include "core/tuner.hpp"
#include "data/eval.hpp"
#include "nn/optim.hpp"
#include "test_util.hpp"

namespace edgellm::nn {
namespace {

TEST(QuantizedAdamW, ConvergesOnQuadratic) {
  Param w("w", Tensor::from_values({0.0f}));
  QuantizedAdamW opt({&w}, {.lr = 0.1f});
  for (int i = 0; i < 200; ++i) {
    w.zero_grad();
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 3.0f, 5e-2f);
}

TEST(QuantizedAdamW, StateBytesQuartered) {
  Param w("w", Tensor({1024}));
  AdamW fp({&w}, {.lr = 0.1f});
  w.grad.fill(1.0f);
  fp.step();
  const int64_t fp_bytes = fp.state_bytes();

  Param w2("w2", Tensor({1024}));
  QuantizedAdamW q({&w2}, {.lr = 0.1f});
  w2.grad.fill(1.0f);
  q.step();
  const int64_t q_bytes = q.state_bytes();

  EXPECT_EQ(fp_bytes, 1024 * 8);
  // int8 m + uint8 v + 2 fp32 scales per 128-block.
  EXPECT_EQ(q_bytes, 1024 * 2 + (1024 / 128) * 2 * 4);
  EXPECT_LT(q_bytes, fp_bytes / 3);
}

TEST(QuantizedAdamW, TracksFp32AdamWClosely) {
  // Identical quadratic bowls in many dimensions; trajectories should stay
  // close despite the int8 moment storage.
  Rng rng(1);
  const Tensor target = randn({256}, rng);
  Param a("a", Tensor({256}));
  Param b("b", Tensor({256}));
  AdamW fp({&a}, {.lr = 0.05f});
  QuantizedAdamW q({&b}, {.lr = 0.05f});
  for (int i = 0; i < 150; ++i) {
    a.zero_grad();
    b.zero_grad();
    for (int64_t j = 0; j < 256; ++j) {
      a.grad[j] = 2.0f * (a.value[j] - target[j]);
      b.grad[j] = 2.0f * (b.value[j] - target[j]);
    }
    fp.step();
    q.step();
  }
  double err_fp = 0.0, err_q = 0.0;
  for (int64_t j = 0; j < 256; ++j) {
    err_fp += std::fabs(a.value[j] - target[j]);
    err_q += std::fabs(b.value[j] - target[j]);
  }
  EXPECT_LT(err_q / 256.0, err_fp / 256.0 + 0.05);
}

TEST(QuantizedAdamW, FrozenParamsSkipped) {
  Param w("w", Tensor::from_values({1.0f}));
  w.trainable = false;
  QuantizedAdamW opt({&w}, {.lr = 0.1f});
  w.grad[0] = 5.0f;
  opt.step();
  EXPECT_FLOAT_EQ(w.value[0], 1.0f);
  EXPECT_EQ(opt.state_bytes(), 0);
}

TEST(QuantizedAdamW, RejectsBadConfig) {
  Param w("w", Tensor({4}));
  EXPECT_THROW(QuantizedAdamW({&w}, {.lr = -1.0f}), std::invalid_argument);
  EXPECT_THROW(QuantizedAdamW({&w}, {.lr = 0.1f, .block_size = 0}), std::invalid_argument);
  EXPECT_THROW(QuantizedAdamW({&w}, {.lr = 0.1f, .block_size = 4096}), std::invalid_argument);
}

TEST(QuantizedAdamW, TunerIntegrationTrainsWithLessOptMemory) {
  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  dc.seed = 5;
  const data::MarkovChain domain(dc);

  auto run = [&](bool quantized) {
    Rng rng(3);
    CausalLm model(edgellm::testing::tiny_config(), rng);
    core::TunerConfig tcfg;
    tcfg.sampling = core::DepthSampling::kCyclic;
    tcfg.backprop_window = 2;
    tcfg.optim.lr = 1e-2f;
    tcfg.quantized_optimizer = quantized;
    core::AdaptiveLayerTuner tuner(model, tcfg, Rng(7));
    Rng drng(11);
    core::StepStats last{};
    float last_loss_sum = 0.0f;
    for (int i = 0; i < 100; ++i) {
      last = tuner.step(data::sample_lm_batch(domain, 4, 12, drng));
      if (i >= 90) last_loss_sum += last.loss;
    }
    return std::make_pair(last_loss_sum, last.optimizer_state_bytes);
  };

  const auto [fp_loss, fp_bytes] = run(false);
  const auto [q_loss, q_bytes] = run(true);
  EXPECT_LT(q_bytes, fp_bytes / 3);
  EXPECT_LT(q_loss, fp_loss * 1.10f);  // within 10% of fp AdamW's final loss
}

}  // namespace
}  // namespace edgellm::nn
