// Kitchen-sink integration: every feature at once — GQA + SwiGLU + LUC
// compression + adaptive tuning with distillation, LR schedule and int8
// optimizer + voting + int8-KV incremental decoding + checkpoint files.
// If any two features interact badly, this is where it surfaces.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/pipeline.hpp"
#include "data/eval.hpp"
#include "nn/decoder.hpp"
#include "nn/serialize.hpp"
#include "runtime/simulator.hpp"
#include "test_util.hpp"

namespace edgellm {
namespace {

nn::ModelConfig sink_config() {
  nn::ModelConfig cfg;
  cfg.vocab = 24;
  cfg.d_model = 16;
  cfg.n_layers = 4;
  cfg.n_heads = 4;
  cfg.n_kv_heads = 2;   // GQA
  cfg.swiglu = true;    // LLaMA-style FFN
  cfg.d_ff = 32;
  cfg.max_seq = 16;
  cfg.exit_layers = {2, 4};
  cfg.tie_exit_heads = false;  // separate heads per exit
  return cfg;
}

TEST(KitchenSink, EverythingComposes) {
  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  dc.seed = 5;
  const data::MarkovChain base(dc);
  const data::MarkovChain target = base.shifted(0.5f, 77);

  // 1. Pretrain the exotic architecture.
  Rng rng(3);
  auto model = core::pretrain_base_model(sink_config(), base, 200, 4, 12, rng);

  // 2. Compress with a joint-sensitivity DP-searched LUC policy.
  Rng crng(31);
  std::vector<data::LmBatch> calib;
  for (int i = 0; i < 2; ++i) calib.push_back(data::sample_lm_batch(base, 4, 12, crng));
  core::SensitivityConfig sens;
  sens.bit_candidates = {4, 8};
  sens.prune_candidates = {0.0f, 0.3f};
  sens.joint = true;
  const auto prof = core::analyze_sensitivity(*model, calib, sens);
  core::LucConfig luc;
  luc.target_effective_bits = 5.0;
  luc.search = core::LucConfig::Search::kExactDp;
  const auto policy = core::search_luc_policy(prof, sens, luc);
  core::apply_policy(*model, policy);

  // 3. Adapt with all tuner features on.
  core::TunerConfig t;
  t.sampling = core::DepthSampling::kLossWeighted;
  t.backprop_window = 2;
  t.quantized_optimizer = true;
  t.distill_weight = 0.5f;
  t.warmup_iters = 5;
  t.decay_iters = 80;
  t.optim.lr = 1e-2f;
  core::AdaptiveLayerTuner tuner(*model, t, Rng(7));
  Rng drng(11);
  Rng eval_rng(12);
  std::vector<data::LmBatch> eval = {data::sample_lm_batch(target, 4, 12, eval_rng)};
  const float before = data::lm_loss(*model, eval, 4);
  for (int i = 0; i < 120; ++i) {
    const auto st = tuner.step(data::sample_lm_batch(target, 4, 12, drng));
    ASSERT_TRUE(std::isfinite(st.loss));
  }
  const float after = data::lm_loss(*model, eval, 4);
  EXPECT_LT(after, before);

  // 4. Vote.
  std::vector<data::LmBatch> vcalib = {data::sample_lm_batch(target, 4, 12, drng)};
  core::ExitVoter voter(*model, {core::VotingMode::kEntropyAdaptive, 0.5f});
  voter.calibrate(vcalib);
  EXPECT_LT(voter.voted_loss(eval), before);

  // 5. Round-trip the compressed, adapted model through a checkpoint file
  //    and decode with an int8 KV cache.
  const std::string path = ::testing::TempDir() + "/edgellm_sink.bin";
  nn::save_model_with_config(*model, path);
  auto loaded = nn::load_model_with_config(path);  // masks + quant ride along
  std::remove(path.c_str());

  std::vector<int64_t> probe = {1, 2, 3, 4, 5, 6};
  EXPECT_TRUE(model->forward_eval(probe, 1, 6, 4)
                  .allclose(loaded->forward_eval(probe, 1, 6, 4), 1e-5f));

  nn::IncrementalDecoder dec(*loaded, /*exit=*/2, /*quantize_kv=*/true);
  nn::GenerateConfig gcfg;
  gcfg.max_new_tokens = 6;
  gcfg.temperature = 0.8f;
  Rng srng(13);
  const auto gen = dec.generate(target.sample(4, srng), gcfg, srng);
  EXPECT_EQ(gen.size(), 6u);
  for (int64_t tok : gen) {
    EXPECT_GE(tok, 0);
    EXPECT_LT(tok, 24);
  }
}

TEST(KitchenSink, SimulatorHandlesExoticConfig) {
  const nn::ModelConfig cfg = sink_config();
  runtime::SimulatorConfig sim;
  sim.batch = 4;
  sim.seq = 8;
  runtime::MethodSpec m;
  m.name = "sink";
  m.policy.layers.assign(4, core::LayerPolicy{4, 0.3f});
  m.exits = {2, 4};
  m.exit_probs = {0.5, 0.5};
  m.backprop_window = 2;
  const runtime::MethodReport rep = runtime::simulate_method(cfg, m, sim);
  EXPECT_GT(rep.expected_cycles, 0.0);
  EXPECT_GT(rep.peak_memory_bytes, 0.0);
  const runtime::MethodReport vanilla =
      runtime::simulate_method(cfg, runtime::vanilla_method(cfg), sim);
  EXPECT_LT(rep.expected_cycles, vanilla.expected_cycles);
}

}  // namespace
}  // namespace edgellm
