// Adversarial coverage of the HTTP/1.1 request parser (src/net/http.hpp):
// hostile framing must fail *closed* with the right status, and byte-at-a-
// time delivery (slowloris, split TCP segments) must parse identically to
// one contiguous buffer. Runs under `ctest -L net`, including the ASan/
// UBSan and TSan CI jobs.
#include <gtest/gtest.h>

#include <string>

#include "net/http.hpp"

namespace {

using namespace edgellm::net;

/// Feeds the whole string, returning bytes consumed.
size_t feed_all(HttpRequestParser& p, const std::string& s) { return p.feed(s.data(), s.size()); }

/// Feeds one byte at a time until consumed, complete, or failed.
void feed_bytes(HttpRequestParser& p, const std::string& s) {
  for (const char c : s) {
    if (p.complete() || p.failed()) return;
    p.feed(&c, 1);
  }
}

// --- well-formed requests ---------------------------------------------------

TEST(NetParser, SimpleGet) {
  HttpRequestParser p;
  const std::string req = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(feed_all(p, req), req.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.method(), "GET");
  EXPECT_EQ(p.path(), "/healthz");
  EXPECT_EQ(p.query(), "");
  EXPECT_EQ(p.header("host"), "x");
  EXPECT_TRUE(p.keep_alive());
  EXPECT_TRUE(p.body().empty());
}

TEST(NetParser, QuerySplitAndHeaderCaseFolding) {
  HttpRequestParser p;
  feed_all(p, "GET /metrics?format=csv HTTP/1.1\r\nX-Thing:  padded \r\n\r\n");
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.path(), "/metrics");
  EXPECT_EQ(p.query(), "format=csv");
  EXPECT_EQ(p.header("x-thing"), "padded");
}

TEST(NetParser, ContentLengthBody) {
  HttpRequestParser p;
  const std::string body = "{\"prompt\": [1]}";
  feed_all(p, "POST /v1/completions HTTP/1.1\r\nContent-Length: " +
                  std::to_string(body.size()) + "\r\n\r\n" + body);
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.body(), body);
}

TEST(NetParser, ChunkedBodyReassembles) {
  HttpRequestParser p;
  feed_all(p,
           "POST /v1/completions HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
           "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n");
  ASSERT_TRUE(p.complete()) << p.error_reason();
  EXPECT_EQ(p.body(), "hello world");
}

TEST(NetParser, ByteAtATimeMatchesContiguous) {
  // The slowloris delivery schedule must change nothing but timing.
  const std::string req =
      "POST /v1/completions HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n";
  HttpRequestParser whole, dribble;
  feed_all(whole, req);
  feed_bytes(dribble, req);
  ASSERT_TRUE(whole.complete());
  ASSERT_TRUE(dribble.complete());
  EXPECT_EQ(whole.body(), dribble.body());
  EXPECT_EQ(whole.path(), dribble.path());
  EXPECT_TRUE(dribble.started());
}

TEST(NetParser, PipelinedRequestsStopAtBoundary) {
  HttpRequestParser p;
  const std::string first = "GET /healthz HTTP/1.1\r\n\r\n";
  const std::string second = "GET /metrics HTTP/1.1\r\n\r\n";
  const std::string wire = first + second;
  // feed() must stop at the end of request one; the pipelined tail stays
  // with the caller.
  EXPECT_EQ(p.feed(wire.data(), wire.size()), first.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.path(), "/healthz");
  p.reset();
  EXPECT_EQ(feed_all(p, second), second.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.path(), "/metrics");
}

TEST(NetParser, KeepAliveDefaultsByVersion) {
  HttpRequestParser p;
  feed_all(p, "GET / HTTP/1.0\r\n\r\n");
  ASSERT_TRUE(p.complete());
  EXPECT_FALSE(p.keep_alive());
  p.reset();
  feed_all(p, "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  ASSERT_TRUE(p.complete());
  EXPECT_TRUE(p.keep_alive());
  p.reset();
  feed_all(p, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_TRUE(p.complete());
  EXPECT_FALSE(p.keep_alive());
}

TEST(NetParser, ExpectContinueFlag) {
  HttpRequestParser p;
  feed_all(p, "POST / HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 1\r\n\r\n");
  EXPECT_FALSE(p.complete());  // body byte still owed
  EXPECT_TRUE(p.expect_continue());
  feed_all(p, "x");
  EXPECT_TRUE(p.complete());
}

TEST(NetParser, TruncatedChunkedIsIncompleteNotFailed) {
  HttpRequestParser p;
  feed_all(p, "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhel");
  EXPECT_FALSE(p.complete());
  EXPECT_FALSE(p.failed());  // the bytes may still arrive; timeouts handle liars
}

// --- hostile input fails closed with the right status -----------------------

TEST(NetParser, OversizedRequestLine414) {
  HttpLimits lim;
  lim.max_request_line = 64;
  HttpRequestParser p(lim);
  // No newline ever arrives: the guard must fire mid-line, not wait.
  feed_all(p, "GET /" + std::string(200, 'a'));
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 414);
}

TEST(NetParser, OversizedHeaderBlock431) {
  HttpLimits lim;
  lim.max_header_bytes = 128;
  HttpRequestParser p(lim);
  feed_all(p, "GET / HTTP/1.1\r\nX-Pad: " + std::string(400, 'b') + "\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 431);
}

TEST(NetParser, TooManyHeaders431) {
  HttpLimits lim;
  lim.max_headers = 4;
  lim.max_header_bytes = 1 << 20;
  HttpRequestParser p(lim);
  std::string req = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 10; ++i) req += "H" + std::to_string(i) + ": v\r\n";
  feed_all(p, req + "\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 431);
}

TEST(NetParser, DeclaredBodyOverCap413) {
  HttpLimits lim;
  lim.max_body_bytes = 1024;
  HttpRequestParser p(lim);
  feed_all(p, "POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 413);
}

TEST(NetParser, ChunkedBodyOverCap413) {
  HttpLimits lim;
  lim.max_body_bytes = 8;
  HttpRequestParser p(lim);
  // The size line alone reveals the overflow; no data bytes needed.
  feed_all(p, "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nff\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 413);
}

TEST(NetParser, SmugglingAmbiguityRejected400) {
  HttpRequestParser p;
  feed_all(p,
           "POST / HTTP/1.1\r\nContent-Length: 3\r\nTransfer-Encoding: chunked\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 400);
}

TEST(NetParser, UnknownTransferCoding501) {
  HttpRequestParser p;
  feed_all(p, "POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 501);
}

TEST(NetParser, ConflictingContentLengths400) {
  HttpRequestParser p;
  feed_all(p, "POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 400);
}

TEST(NetParser, MalformedContentLength400) {
  HttpRequestParser p;
  feed_all(p, "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 400);
}

TEST(NetParser, WhitespaceBeforeColon400) {
  HttpRequestParser p;
  feed_all(p, "GET / HTTP/1.1\r\nHost : x\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 400);
}

TEST(NetParser, LowercaseMethod400) {
  HttpRequestParser p;
  feed_all(p, "get / HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 400);
}

TEST(NetParser, UnsupportedVersion505) {
  HttpRequestParser p;
  feed_all(p, "GET / HTTP/2.0\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 505);
}

TEST(NetParser, UnsupportedExpect417) {
  HttpRequestParser p;
  feed_all(p, "POST / HTTP/1.1\r\nExpect: 200-maybe\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 417);
}

TEST(NetParser, ChunkExtensionsRejected400) {
  HttpRequestParser p;
  feed_all(p, "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5;ext=1\r\nhello\r\n0\r\n\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 400);
}

TEST(NetParser, GarbageChunkSize400) {
  HttpRequestParser p;
  feed_all(p, "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 400);
}

TEST(NetParser, MissingCrlfAfterChunkData400) {
  HttpRequestParser p;
  feed_all(p, "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabcXX\r\n");
  ASSERT_TRUE(p.failed());
  EXPECT_EQ(p.error_status(), 400);
}

TEST(NetParser, LeadingEmptyLinesToleratedButBudgeted) {
  HttpRequestParser p;
  feed_all(p, "\r\n\r\nGET / HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(p.complete());

  HttpLimits lim;
  lim.max_header_bytes = 64;
  HttpRequestParser q(lim);
  feed_all(q, std::string(200, '\n'));
  ASSERT_TRUE(q.failed());
  EXPECT_EQ(q.error_status(), 400);
}

TEST(NetParser, ErrorStopsConsuming) {
  HttpRequestParser p;
  const std::string wire = "bad\r\ntrailing bytes the parser must not touch";
  const size_t used = p.feed(wire.data(), wire.size());
  ASSERT_TRUE(p.failed());
  EXPECT_LT(used, wire.size());
}

// --- response writers -------------------------------------------------------

TEST(NetWriters, PlainResponseShape) {
  const std::string r = http_response(200, "application/json", "{}", true);
  EXPECT_EQ(r.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(r.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(r.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(r.substr(r.size() - 2), "{}");
  const std::string c = http_response(503, "application/json", "{}", false);
  EXPECT_NE(c.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(c.find("503 Service Unavailable"), std::string::npos);
}

TEST(NetWriters, StreamingHeadAndChunks) {
  const std::string head = streaming_response_head(200, "application/x-ndjson", true);
  EXPECT_NE(head.find("Transfer-Encoding: chunked\r\n"), std::string::npos);
  EXPECT_EQ(head.substr(head.size() - 4), "\r\n\r\n");
  EXPECT_EQ(chunk_frame("hello"), "5\r\nhello\r\n");
  EXPECT_EQ(chunk_frame(std::string(255, 'x')).substr(0, 4), "ff\r\n");
  EXPECT_EQ(kChunkTerminator, "0\r\n\r\n");
}

TEST(NetWriters, ChunkFramesRoundTripThroughParser) {
  // What our writer emits, our parser must accept — the bench client and
  // the loopback tests both depend on this agreement.
  HttpRequestParser p;
  std::string wire = "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  wire += chunk_frame("{\"id\": 1}\n");
  wire += chunk_frame("{\"id\": 2}\n");
  wire += kChunkTerminator;
  EXPECT_EQ(feed_all(p, wire), wire.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.body(), "{\"id\": 1}\n{\"id\": 2}\n");
}

TEST(NetWriters, JsonErrorBodyEscapes) {
  EXPECT_EQ(json_error_body("plain"), "{\"error\": \"plain\"}");
  EXPECT_EQ(json_error_body("a\"b\\c\nd"), "{\"error\": \"a\\\"b\\\\c\\nd\"}");
  EXPECT_EQ(json_error_body(std::string(1, '\x01')), "{\"error\": \"\\u0001\"}");
}

}  // namespace
