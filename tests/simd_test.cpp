// Differential suite for the runtime-dispatched SIMD kernel family
// (tensor/simd.hpp): every default-path kernel must be BITWISE identical
// to the scalar reference table at any dispatch choice and thread count —
// on tile-boundary shapes, odd tails, odd int4 nibble alignments, and
// NaN/Inf inputs — while the opt-in fast_math kernels are held to a
// tolerance instead. Run alone with `ctest -L simd`.
//
// On hosts whose best backend IS the scalar table (no AVX2/NEON), the
// native-vs-scalar comparisons degenerate to scalar-vs-scalar and pass
// trivially; the dispatch round-trip and fast-math tests still bite.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "quant/packed.hpp"
#include "serve/engine.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "tensor/simd.hpp"
#include "test_util.hpp"

namespace edgellm {
namespace {

using edgellm::testing::greedy_request;
using edgellm::testing::seq_tokens;
using edgellm::testing::serve_batch;
using edgellm::testing::tiny_config;
namespace gemm = ops::gemm;

// Restores the process-global dispatch (and fast-math flag) on scope exit
// so test order never matters.
class DispatchScope {
 public:
  DispatchScope() : prev_(simd::active_isa()), prev_fast_(gemm::fast_math_enabled()) {}
  ~DispatchScope() {
    simd::set_dispatch(simd::to_string(prev_));
    gemm::set_fast_math(prev_fast_);
  }

 private:
  simd::Isa prev_;
  bool prev_fast_;
};

Tensor rand_tensor(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = rng.uniform(-1.0f, 1.0f);
  return t;
}

void expect_bitwise_equal(const Tensor& got, const Tensor& want, const std::string& what) {
  ASSERT_EQ(got.numel(), want.numel()) << what;
  for (int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(std::bit_cast<uint32_t>(got.data()[i]), std::bit_cast<uint32_t>(want.data()[i]))
        << what << " element " << i << ": got " << got.data()[i] << " want " << want.data()[i];
  }
}

void expect_bitwise_equal(const float* got, const float* want, int64_t n,
                          const std::string& what) {
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(std::bit_cast<uint32_t>(got[i]), std::bit_cast<uint32_t>(want[i]))
        << what << " element " << i << ": got " << got[i] << " want " << want[i];
  }
}

// --- dispatch plumbing ------------------------------------------------------

TEST(SimdDispatch, RoundTripAndValidation) {
  DispatchScope scope;
  ASSERT_TRUE(simd::dispatch_available("scalar"));
  ASSERT_TRUE(simd::dispatch_available("auto"));
  EXPECT_FALSE(simd::dispatch_available("avx512"));

  ASSERT_TRUE(simd::set_dispatch("scalar"));
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);

  ASSERT_TRUE(simd::set_dispatch("auto"));
  EXPECT_EQ(simd::active_isa(), simd::detected_isa());

  // Unknown / unavailable names leave dispatch unchanged.
  const simd::Isa before = simd::active_isa();
  EXPECT_FALSE(simd::set_dispatch("bogus"));
  EXPECT_EQ(simd::active_isa(), before);
}

TEST(SimdDispatch, TablesCompleteAndNamed) {
  const simd::KernelTable* scalar = simd::table_for(simd::Isa::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(scalar->isa, simd::Isa::kScalar);
  const simd::KernelTable* native = simd::table_for(simd::detected_isa());
  ASSERT_NE(native, nullptr);
  for (const simd::KernelTable* t : {scalar, native}) {
    EXPECT_NE(t->gemm_tile, nullptr);
    EXPECT_NE(t->gemm_tile_fast, nullptr);
    EXPECT_NE(t->dequant_dot, nullptr);
    EXPECT_NE(t->dequant_dot_fast, nullptr);
    EXPECT_NE(t->exp_sub, nullptr);
    EXPECT_NE(t->scale_inplace, nullptr);
    EXPECT_NE(t->silu, nullptr);
    EXPECT_NE(t->swiglu, nullptr);
    EXPECT_NE(t->add, nullptr);
    EXPECT_NE(t->rms_apply, nullptr);
    EXPECT_NE(t->sumsq_fast, nullptr);
  }
  EXPECT_STREQ(simd::to_string(simd::Isa::kScalar), "scalar");
  EXPECT_STREQ(simd::to_string(simd::Isa::kAvx2), "avx2");
  EXPECT_STREQ(simd::to_string(simd::Isa::kNeon), "neon");
}

// --- the shared polynomial exp ----------------------------------------------

TEST(SimdExp, SaturationNaNAndAccuracy) {
  EXPECT_EQ(simd::exp_scalar(0.0f), 1.0f);
  EXPECT_EQ(simd::exp_scalar(89.0f), std::numeric_limits<float>::infinity());
  EXPECT_EQ(simd::exp_scalar(std::numeric_limits<float>::infinity()),
            std::numeric_limits<float>::infinity());
  EXPECT_EQ(simd::exp_scalar(-88.0f), 0.0f);
  EXPECT_EQ(simd::exp_scalar(-std::numeric_limits<float>::infinity()), 0.0f);
  // NaN passes through with its payload untouched.
  const float nan_in = std::bit_cast<float>(0x7fc12345u);
  EXPECT_EQ(std::bit_cast<uint32_t>(simd::exp_scalar(nan_in)), 0x7fc12345u);
  // ~1 ulp agreement with libm across the non-saturating range.
  for (float x = -80.0f; x <= 80.0f; x += 0.37f) {
    const double want = std::exp(static_cast<double>(x));
    EXPECT_NEAR(simd::exp_scalar(x) / want, 1.0, 1e-6) << "x=" << x;
  }
  // sigmoid is exp-based and bounded.
  EXPECT_EQ(simd::sigmoid_scalar(0.0f), 0.5f);
  EXPECT_NEAR(simd::sigmoid_scalar(10.0f), 1.0f, 1e-4f);
  EXPECT_NEAR(simd::sigmoid_scalar(-10.0f), 0.0f, 1e-4f);
}

// --- kernel-level bitwise equivalence: GEMM micro-tile ----------------------

TEST(SimdBitwise, GemmTileMatchesScalarAllEdges) {
  const simd::KernelTable* scalar = simd::table_for(simd::Isa::kScalar);
  const simd::KernelTable* native = simd::table_for(simd::detected_isa());
  Rng rng(101);
  const int64_t kNr = gemm::kNr;
  for (int64_t pc : {int64_t{1}, int64_t{2}, int64_t{3}, int64_t{7}, int64_t{8}, int64_t{37}}) {
    // Panel: pc x kNr, 64-byte aligned like the real packers produce.
    std::vector<float, simd::PanelAllocator<float>> panel(static_cast<size_t>(pc * kNr));
    for (int64_t mr = 1; mr <= gemm::kMr; ++mr) {
      for (int64_t nr = 1; nr <= kNr; ++nr) {
        for (auto& v : panel) v = 0.0f;
        for (int64_t p = 0; p < pc; ++p) {
          for (int64_t j = 0; j < nr; ++j) panel[p * kNr + j] = rng.uniform(-1.0f, 1.0f);
        }
        const int64_t lda = pc + 3;  // sub-stride access like a real A block
        std::vector<float> a(static_cast<size_t>(mr * lda));
        for (auto& v : a) v = rng.uniform(-1.0f, 1.0f);
        const int64_t ldc = nr + 2;
        std::vector<float> c0(static_cast<size_t>(mr * ldc));
        for (auto& v : c0) v = rng.uniform(-1.0f, 1.0f);  // accumulate-into
        std::vector<float> c1 = c0;
        scalar->gemm_tile(a.data(), lda, panel.data(), pc, c0.data(), ldc, mr, nr);
        native->gemm_tile(a.data(), lda, panel.data(), pc, c1.data(), ldc, mr, nr);
        expect_bitwise_equal(c1.data(), c0.data(), mr * ldc,
                             "gemm_tile mr=" + std::to_string(mr) + " nr=" + std::to_string(nr) +
                                 " pc=" + std::to_string(pc));
      }
    }
  }
}

// --- kernel-level bitwise equivalence: fused dequant-dot --------------------

TEST(SimdBitwise, DequantDotMatchesScalarAllEdges) {
  const simd::KernelTable* scalar = simd::table_for(simd::Isa::kScalar);
  const simd::KernelTable* native = simd::table_for(simd::detected_isa());
  Rng rng(202);
  const int64_t kNr = gemm::kNr;
  const int64_t cols = 64;  // full weight-row width the payloads represent
  for (int bits : {4, 8}) {
    // Eight packed weight rows of `cols` columns each.
    const int64_t row_bytes = bits == 4 ? (cols + 1) / 2 : cols;
    std::vector<std::vector<uint8_t>> payload(static_cast<size_t>(kNr));
    for (auto& row : payload) {
      row.resize(static_cast<size_t>(row_bytes));
      for (auto& b : row) {
        // int8 stays within the symmetric-quant range [-127, 127]; any
        // nibble pattern is a valid int4 payload.
        b = static_cast<uint8_t>(static_cast<int32_t>(rng.uniform(0.0f, 255.0f)));
        if (bits == 8 && b == 0x80) b = 0;  // avoid -128 (packer never emits it)
      }
    }
    for (int64_t p0 : {int64_t{0}, int64_t{1}, int64_t{5}, int64_t{8}}) {
      for (int64_t pc : {int64_t{1}, int64_t{3}, int64_t{8}, int64_t{17}}) {
        if (p0 + pc > cols) continue;
        for (int64_t mr = 1; mr <= gemm::kMr; ++mr) {
          for (int64_t nr = 1; nr <= kNr; ++nr) {
            const uint8_t* rows[8] = {nullptr};
            for (int64_t jr = 0; jr < nr; ++jr) rows[jr] = payload[static_cast<size_t>(jr)].data();
            const int64_t lda = cols;
            std::vector<float> a(static_cast<size_t>(mr * lda));
            for (auto& v : a) v = rng.uniform(-1.0f, 1.0f);
            const int64_t ldc = nr + 1;
            std::vector<float> c0(static_cast<size_t>(mr * ldc));
            for (auto& v : c0) v = rng.uniform(-1.0f, 1.0f);
            std::vector<float> c1 = c0;
            // `a` is indexed relative to the depth block: pass the block base.
            scalar->dequant_dot(a.data(), lda, mr, rows, bits, p0, pc, c0.data(), ldc, nr);
            native->dequant_dot(a.data(), lda, mr, rows, bits, p0, pc, c1.data(), ldc, nr);
            expect_bitwise_equal(c1.data(), c0.data(), mr * ldc,
                                 "dequant_dot bits=" + std::to_string(bits) +
                                     " p0=" + std::to_string(p0) + " pc=" + std::to_string(pc) +
                                     " mr=" + std::to_string(mr) + " nr=" + std::to_string(nr));
          }
        }
      }
    }
  }
}

// --- kernel-level bitwise equivalence: elementwise --------------------------

TEST(SimdBitwise, ElementwiseMatchScalarIncludingNonFinite) {
  const simd::KernelTable* scalar = simd::table_for(simd::Isa::kScalar);
  const simd::KernelTable* native = simd::table_for(simd::detected_isa());
  Rng rng(303);
  for (int64_t n : {int64_t{1}, int64_t{2}, int64_t{7}, int64_t{8}, int64_t{9}, int64_t{31},
                    int64_t{64}, int64_t{1000}}) {
    std::vector<float> x(static_cast<size_t>(n)), b(static_cast<size_t>(n)),
        gain(static_cast<size_t>(n));
    for (auto& v : x) v = rng.uniform(-6.0f, 6.0f);
    for (auto& v : b) v = rng.uniform(-1.0f, 1.0f);
    for (auto& v : gain) v = rng.uniform(0.5f, 1.5f);
    if (n >= 8) {
      // Plant non-finite values at a vector-body index and in the tail.
      x[3] = std::numeric_limits<float>::quiet_NaN();
      x[static_cast<size_t>(n) - 1] = std::numeric_limits<float>::infinity();
      x[static_cast<size_t>(n) - 2] = -std::numeric_limits<float>::infinity();
    }
    std::vector<float> y0(static_cast<size_t>(n)), y1(static_cast<size_t>(n));
    const std::string tag = " n=" + std::to_string(n);

    scalar->exp_sub(x.data(), 0.5f, y0.data(), n);
    native->exp_sub(x.data(), 0.5f, y1.data(), n);
    expect_bitwise_equal(y1.data(), y0.data(), n, "exp_sub" + tag);

    y0 = x;
    y1 = x;
    scalar->scale_inplace(y0.data(), 0.3125f, n);
    native->scale_inplace(y1.data(), 0.3125f, n);
    expect_bitwise_equal(y1.data(), y0.data(), n, "scale_inplace" + tag);

    scalar->silu(x.data(), y0.data(), n);
    native->silu(x.data(), y1.data(), n);
    expect_bitwise_equal(y1.data(), y0.data(), n, "silu" + tag);

    scalar->swiglu(x.data(), b.data(), y0.data(), n);
    native->swiglu(x.data(), b.data(), y1.data(), n);
    expect_bitwise_equal(y1.data(), y0.data(), n, "swiglu" + tag);

    scalar->add(x.data(), b.data(), y0.data(), n);
    native->add(x.data(), b.data(), y1.data(), n);
    expect_bitwise_equal(y1.data(), y0.data(), n, "add" + tag);

    scalar->rms_apply(x.data(), gain.data(), 0.8671875f, y0.data(), n);
    native->rms_apply(x.data(), gain.data(), 0.8671875f, y1.data(), n);
    expect_bitwise_equal(y1.data(), y0.data(), n, "rms_apply" + tag);
  }
}

// --- op-level bitwise equivalence across dispatch and threads ---------------

// Shapes that stress micro-tile boundaries (kMr=4, kNr=8) and odd tails;
// blocking {4,3,8} forces odd kc so the int4 kernel's misaligned-nibble
// head path runs at k-block seams.
TEST(SimdBitwise, OpsIdenticalAcrossDispatchAndThreads) {
  DispatchScope scope;
  Rng rng(404);
  const struct {
    int64_t m, k, n;
  } shapes[] = {{1, 1, 1}, {3, 5, 8}, {4, 7, 9}, {13, 17, 23}, {7, 33, 40}};
  const gemm::Blocking blockings[] = {gemm::Blocking{}, gemm::Blocking{4, 3, 8}};

  for (const auto& s : shapes) {
    const Tensor a = rand_tensor({s.m, s.k}, rng);
    const Tensor bt = rand_tensor({s.n, s.k}, rng);
    const Tensor gate = rand_tensor({s.m, s.n}, rng);
    const Tensor up = rand_tensor({s.m, s.n}, rng);
    const Tensor gain = rand_tensor({s.k}, rng);
    const quant::PackedMatrix w4 = quant::PackedMatrix::pack(bt, 4);
    const quant::PackedMatrix w8 = quant::PackedMatrix::pack(bt, 8);

    for (int64_t threads : {int64_t{1}, int64_t{2}, int64_t{8}}) {
      parallel::NumThreadsScope nts(threads);
      const std::string tag = " m=" + std::to_string(s.m) + " k=" + std::to_string(s.k) +
                              " n=" + std::to_string(s.n) + " t=" + std::to_string(threads);

      ASSERT_TRUE(simd::set_dispatch("scalar"));
      std::vector<Tensor> want;
      for (const auto& blk : blockings) {
        want.push_back(gemm::matmul_nt_blocked(a, bt, blk, /*fast_math=*/false));
        want.push_back(quant::packed_matmul_nt_blocked(a, w4, blk, false));
        want.push_back(quant::packed_matmul_nt_blocked(a, w8, blk, false));
      }
      want.push_back(ops::softmax_lastdim(a));
      want.push_back(ops::silu(a));
      want.push_back(ops::swiglu(gate, up));
      want.push_back(ops::rms_norm_lastdim(a, gain, 1e-5f));
      want.push_back(ops::add(gate, up));

      ASSERT_TRUE(simd::set_dispatch("auto"));
      std::vector<Tensor> got;
      for (const auto& blk : blockings) {
        got.push_back(gemm::matmul_nt_blocked(a, bt, blk, false));
        got.push_back(quant::packed_matmul_nt_blocked(a, w4, blk, false));
        got.push_back(quant::packed_matmul_nt_blocked(a, w8, blk, false));
      }
      got.push_back(ops::softmax_lastdim(a));
      got.push_back(ops::silu(a));
      got.push_back(ops::swiglu(gate, up));
      got.push_back(ops::rms_norm_lastdim(a, gain, 1e-5f));
      got.push_back(ops::add(gate, up));

      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        expect_bitwise_equal(got[i], want[i], "op " + std::to_string(i) + tag);
      }
    }
  }
}

// swiglu must compose exactly as silu-then-multiply (the MLP backward and
// swiglu_test rely on this identity).
TEST(SimdBitwise, SwigluEqualsSiluThenMul) {
  Rng rng(505);
  const Tensor g = rand_tensor({5, 33}, rng);
  const Tensor u = rand_tensor({5, 33}, rng);
  expect_bitwise_equal(ops::swiglu(g, u), ops::mul(ops::silu(g), u), "swiglu identity");
}

// NaN/Inf entering the GEMM inputs must propagate identically at every
// dispatch choice (no operand is ever skipped on the deterministic path).
TEST(SimdBitwise, NanInfPropagationAcrossDispatch) {
  DispatchScope scope;
  Rng rng(606);
  Tensor a = rand_tensor({5, 19}, rng);
  Tensor bt = rand_tensor({9, 19}, rng);
  a.data()[7] = std::numeric_limits<float>::quiet_NaN();
  a.data()[30] = std::numeric_limits<float>::infinity();
  bt.data()[12] = -std::numeric_limits<float>::infinity();
  const gemm::Blocking blk{4, 3, 8};

  ASSERT_TRUE(simd::set_dispatch("scalar"));
  const Tensor want = gemm::matmul_nt_blocked(a, bt, blk, false);
  const Tensor want_sm = ops::softmax_lastdim(a);
  ASSERT_TRUE(simd::set_dispatch("auto"));
  const Tensor got = gemm::matmul_nt_blocked(a, bt, blk, false);
  const Tensor got_sm = ops::softmax_lastdim(a);

  bool saw_nan = false;
  for (int64_t i = 0; i < want.numel(); ++i) saw_nan |= std::isnan(want.data()[i]);
  EXPECT_TRUE(saw_nan) << "test should actually exercise NaN propagation";
  expect_bitwise_equal(got, want, "NaN/Inf gemm");
  expect_bitwise_equal(got_sm, want_sm, "NaN softmax");
}

// --- fast_math: opt-in, tolerance-checked -----------------------------------

TEST(SimdFastMath, GlobalFlagRoundTrip) {
  DispatchScope scope;
  EXPECT_FALSE(gemm::fast_math_enabled());
  gemm::set_fast_math(true);
  EXPECT_TRUE(gemm::fast_math_enabled());
  gemm::set_fast_math(false);
  EXPECT_FALSE(gemm::fast_math_enabled());
}

TEST(SimdFastMath, GemmWithinToleranceOfReference) {
  DispatchScope scope;
  ASSERT_TRUE(simd::set_dispatch("auto"));
  Rng rng(707);
  const Tensor a = rand_tensor({13, 67}, rng);
  const Tensor bt = rand_tensor({21, 67}, rng);
  const Tensor want = gemm::matmul_nt_naive(a, bt);
  const Tensor fast = gemm::matmul_nt_blocked(a, bt, gemm::Blocking{}, /*fast_math=*/true);
  EXPECT_TRUE(fast.allclose(want, 1e-4f));

  const quant::PackedMatrix w8 = quant::PackedMatrix::pack(bt, 8);
  const Tensor want_q = quant::packed_matmul_nt_ref(a, w8);
  const Tensor fast_q = quant::packed_matmul_nt_blocked(a, w8, gemm::Blocking{}, true);
  EXPECT_TRUE(fast_q.allclose(want_q, 1e-4f));

  // Scalar dispatch ignores fast_math entirely: still the bitwise reference.
  ASSERT_TRUE(simd::set_dispatch("scalar"));
  const Tensor scalar_fast = gemm::matmul_nt_blocked(a, bt, gemm::Blocking{}, true);
  expect_bitwise_equal(scalar_fast, want, "scalar fast_math aliases reference");
}

// --- end to end: served greedy outputs --------------------------------------

// The acceptance bar for the whole dispatch layer: a served greedy
// completion is byte-identical under scalar and native dispatch.
TEST(SimdServe, GreedyCompletionsIdenticalAcrossDispatch) {
  DispatchScope scope;
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(31);
  nn::CausalLm model(cfg, rng);

  std::vector<serve::Request> reqs;
  reqs.push_back(greedy_request(1, seq_tokens(6, cfg.vocab, 0), 6));
  reqs.push_back(greedy_request(2, seq_tokens(5, cfg.vocab, 7), 6));

  auto run = [&](const char* isa) {
    EXPECT_TRUE(simd::set_dispatch(isa));
    serve::EngineConfig ecfg;
    ecfg.threads = 1;
    serve::ServeEngine engine(model, ecfg);
    std::vector<std::vector<int64_t>> tokens;
    for (auto& c : serve_batch(engine, reqs)) {
      EXPECT_EQ(c.status, serve::RequestStatus::kOk);
      tokens.push_back(c.tokens);
    }
    return tokens;
  };

  const auto want = run("scalar");
  const auto got = run("auto");
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "completion " << i << " diverged across dispatch";
  }
}

}  // namespace
}  // namespace edgellm
