// Gradient checkpointing: identical gradients to the plain full backward,
// at a fraction of the cached-activation footprint.
#include <gtest/gtest.h>

#include "core/tuner.hpp"
#include "data/eval.hpp"
#include "hw/workload.hpp"
#include "nn/loss.hpp"
#include "runtime/simulator.hpp"
#include "test_util.hpp"

namespace edgellm::nn {
namespace {

using edgellm::testing::tiny_config;

std::vector<int64_t> seq_tokens(int64_t n, int64_t vocab) {
  std::vector<int64_t> t(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) t[static_cast<size_t>(i)] = (i * 7 + 3) % vocab;
  return t;
}

TEST(Checkpoint, GradientsMatchPlainBackwardExactly) {
  const ModelConfig cfg = tiny_config();
  Rng rng_a(1);
  CausalLm plain(cfg, rng_a);
  Rng rng_b(2);
  CausalLm ckpt(cfg, rng_b);
  ckpt.load_state_dict(plain.state_dict());

  const auto toks = seq_tokens(16, cfg.vocab);
  const auto targets = seq_tokens(16, cfg.vocab);

  auto run = [&](CausalLm& m, const ForwardPlan& plan) {
    m.zero_grad();
    const Tensor logits = m.forward(toks, 4, 4, plan);
    const CrossEntropyResult ce = cross_entropy(logits, targets);
    m.backward(ce.grad_logits);
  };

  run(plain, ForwardPlan::full(cfg.n_layers));
  run(ckpt, ForwardPlan::full_checkpointed(cfg.n_layers));

  const auto pa = plain.params();
  const auto pb = ckpt.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i]->grad.allclose(pb[i]->grad, 1e-5f)) << pa[i]->name;
  }
}

TEST(Checkpoint, UsesLessActivationMemory) {
  const ModelConfig cfg = tiny_config();
  Rng rng(3);
  CausalLm model(cfg, rng);
  const auto toks = seq_tokens(32, cfg.vocab);

  model.clear_cache();
  (void)model.forward(toks, 8, 4, ForwardPlan::full(cfg.n_layers));
  const int64_t plain_bytes = model.cached_activation_bytes();

  model.clear_cache();
  (void)model.forward(toks, 8, 4, ForwardPlan::full_checkpointed(cfg.n_layers));
  const int64_t ckpt_bytes = model.cached_activation_bytes();

  EXPECT_LT(ckpt_bytes, plain_bytes / 2);
  EXPECT_GT(ckpt_bytes, 0);
}

TEST(Checkpoint, PeakBackwardCacheIsOneBlock) {
  const ModelConfig cfg = tiny_config();
  Rng rng(4);
  CausalLm model(cfg, rng);
  const auto toks = seq_tokens(16, cfg.vocab);
  const auto targets = seq_tokens(16, cfg.vocab);

  const Tensor logits = model.forward(toks, 4, 4, ForwardPlan::full_checkpointed(cfg.n_layers));
  const CrossEntropyResult ce = cross_entropy(logits, targets);
  model.backward(ce.grad_logits);
  const int64_t one_block = model.peak_backward_cache_bytes();
  EXPECT_GT(one_block, 0);

  // Compare against a plain full forward: all three blocks cached is about
  // 3x one transient block.
  model.clear_cache();
  (void)model.forward(toks, 4, 4, ForwardPlan::full(cfg.n_layers));
  // Subtract head/norm caches by measuring a zero-depth plan.
  model.clear_cache();
  (void)model.forward(toks, 4, 4, ForwardPlan{cfg.n_layers, 0, false, false});
  const int64_t head_only = model.cached_activation_bytes();
  model.clear_cache();
  (void)model.forward(toks, 4, 4, ForwardPlan::full(cfg.n_layers));
  const int64_t full = model.cached_activation_bytes();
  EXPECT_NEAR(static_cast<double>(one_block),
              static_cast<double>(full - head_only) / cfg.n_layers,
              static_cast<double>(one_block) * 0.05);
}

TEST(Checkpoint, RequiresFullDepth) {
  const ModelConfig cfg = tiny_config();
  Rng rng(5);
  CausalLm model(cfg, rng);
  const auto toks = seq_tokens(8, cfg.vocab);
  EXPECT_THROW(model.forward(toks, 2, 4, ForwardPlan{3, 1, false, true}),
               std::invalid_argument);
}

TEST(Checkpoint, TunerIntegrationTrains) {
  const ModelConfig cfg = tiny_config();
  Rng rng(6);
  CausalLm model(cfg, rng);
  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  dc.seed = 5;
  const data::MarkovChain domain(dc);

  core::TunerConfig tcfg = core::TunerConfig::vanilla_checkpointed();
  tcfg.optim.lr = 1e-2f;
  core::AdaptiveLayerTuner tuner(model, tcfg, Rng(7));
  Rng drng(11);
  float first = 0, last = 0;
  for (int i = 0; i < 100; ++i) {
    const auto st = tuner.step(data::sample_lm_batch(domain, 4, 12, drng));
    if (i < 10) first += st.loss;
    if (i >= 90) last += st.loss;
  }
  EXPECT_LT(last, first * 0.95f);
}

TEST(Checkpoint, TunerMemoryBetweenWindowAndFull) {
  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  dc.seed = 5;
  const data::MarkovChain domain(dc);
  Rng drng(12);
  const auto batch = data::sample_lm_batch(domain, 4, 12, drng);

  auto measure = [&](core::TunerConfig tcfg) {
    Rng rng(7);
    CausalLm model(tiny_config(), rng);
    core::AdaptiveLayerTuner tuner(model, tcfg, Rng(8));
    return tuner.step(batch);
  };

  core::TunerConfig full = core::TunerConfig::vanilla();
  core::TunerConfig ckpt = core::TunerConfig::vanilla_checkpointed();
  core::TunerConfig window;
  window.sampling = core::DepthSampling::kFinalOnly;
  window.backprop_window = 1;

  const auto a = measure(full);
  const auto b = measure(ckpt);
  const auto c = measure(window);
  EXPECT_LT(b.activation_bytes, a.activation_bytes);
  EXPECT_LT(c.activation_bytes, b.activation_bytes);
  // Checkpointing does NOT reduce gradient or optimizer memory.
  EXPECT_EQ(b.grad_bytes, a.grad_bytes);
  EXPECT_LT(c.grad_bytes, b.grad_bytes);
}

TEST(Checkpoint, WorkloadAddsRecompute) {
  const ModelConfig cfg = tiny_config();
  std::vector<hw::LayerCompression> comp(static_cast<size_t>(cfg.n_layers));
  hw::IterationSpec plain{4, 16, cfg.n_layers, cfg.n_layers, true, false};
  hw::IterationSpec ckpt{4, 16, cfg.n_layers, cfg.n_layers, true, true};
  int64_t macs_plain = 0, macs_ckpt = 0;
  for (const auto& w : hw::training_iteration_workloads(cfg, comp, plain)) {
    macs_plain += w.total_macs();
  }
  for (const auto& w : hw::training_iteration_workloads(cfg, comp, ckpt)) {
    macs_ckpt += w.total_macs();
  }
  EXPECT_GT(macs_ckpt, macs_plain);
  // Extra cost is roughly one forward pass (~1/3 of fwd+bwd).
  EXPECT_LT(macs_ckpt, macs_plain * 1.5);
}

TEST(Checkpoint, SimulatorTradeoff) {
  const ModelConfig cfg = tiny_config();
  runtime::SimulatorConfig sim;
  sim.batch = 4;
  sim.seq = 8;
  const auto plain = runtime::simulate_method(cfg, runtime::vanilla_method(cfg), sim);
  const auto ckpt =
      runtime::simulate_method(cfg, runtime::vanilla_checkpointed_method(cfg), sim);
  EXPECT_GT(ckpt.expected_cycles, plain.expected_cycles);          // pays compute
  EXPECT_LT(ckpt.peak_activation_bytes, plain.peak_activation_bytes);  // saves memory
  EXPECT_EQ(ckpt.peak_grad_bytes, plain.peak_grad_bytes);          // grads unchanged
}

}  // namespace
}  // namespace edgellm::nn
