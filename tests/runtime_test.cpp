// Runtime simulator tests, including cross-validation of the analytic
// memory model against the real modules' measured caching.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "data/eval.hpp"
#include "runtime/simulator.hpp"
#include "test_util.hpp"

namespace edgellm::runtime {
namespace {

using edgellm::testing::tiny_config;

TEST(Simulator, AnalyticActivationBytesMatchMeasured) {
  Rng rng(1);
  const nn::ModelConfig cfg = tiny_config();
  nn::CausalLm model(cfg, rng);
  const int64_t batch = 4, seq = 8;
  std::vector<int64_t> toks(static_cast<size_t>(batch * seq));
  for (size_t i = 0; i < toks.size(); ++i) toks[i] = static_cast<int64_t>(i) % cfg.vocab;

  for (int64_t depth : {1, 2, 3}) {
    model.clear_cache();
    (void)model.forward(toks, batch, seq, {cfg.n_layers, depth, false});
    const int64_t measured = model.cached_activation_bytes();
    // depth blocks + exit head/norm caches.
    const double analytic = static_cast<double>(depth) * block_activation_bytes(cfg, batch, seq);
    // Analytic block bytes must match measured block increments exactly.
    if (depth > 1) {
      model.clear_cache();
      (void)model.forward(toks, batch, seq, {cfg.n_layers, depth - 1, false});
      const int64_t measured_prev = model.cached_activation_bytes();
      EXPECT_DOUBLE_EQ(static_cast<double>(measured - measured_prev),
                       block_activation_bytes(cfg, batch, seq));
    }
    EXPECT_GT(static_cast<double>(measured), analytic * 0.9);
    EXPECT_LT(static_cast<double>(measured), analytic * 1.3);
  }
}

TEST(Simulator, BlockParamCountMatchesModel) {
  Rng rng(2);
  const nn::ModelConfig cfg = tiny_config();
  nn::CausalLm model(cfg, rng);
  int64_t block0 = 0;
  for (nn::Param* p : model.params()) {
    if (p->name.rfind("block0.", 0) == 0) block0 += p->numel();
  }
  EXPECT_DOUBLE_EQ(block_param_count(cfg), static_cast<double>(block0));
}

TEST(Simulator, VanillaMethodSpec) {
  const nn::ModelConfig cfg = tiny_config();
  const MethodSpec m = vanilla_method(cfg);
  EXPECT_EQ(m.exits, (std::vector<int64_t>{cfg.n_layers}));
  EXPECT_EQ(m.policy.layers.size(), static_cast<size_t>(cfg.n_layers));
  EXPECT_EQ(m.policy.layers[0].bits, 16);
}

MethodSpec edge_llm_method(const nn::ModelConfig& cfg) {
  MethodSpec m;
  m.name = "edge-llm";
  m.policy.layers.assign(static_cast<size_t>(cfg.n_layers), core::LayerPolicy{4, 0.5f});
  m.exits = {1, 2, 3};
  m.exit_probs = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  m.backprop_window = 1;
  return m;
}

TEST(Simulator, EdgeLlmFasterAndSmallerThanVanilla) {
  const nn::ModelConfig cfg = tiny_config();
  SimulatorConfig sim;
  sim.batch = 4;
  sim.seq = 8;

  const MethodReport vanilla = simulate_method(cfg, vanilla_method(cfg), sim);
  const MethodReport edge = simulate_method(cfg, edge_llm_method(cfg), sim);

  EXPECT_LT(edge.expected_cycles, vanilla.expected_cycles);
  EXPECT_LT(edge.peak_memory_bytes, vanilla.peak_memory_bytes);
  EXPECT_LT(edge.weight_bytes, vanilla.weight_bytes);
  EXPECT_LT(edge.peak_activation_bytes, vanilla.peak_activation_bytes);
  EXPECT_GT(vanilla.expected_cycles / edge.expected_cycles, 1.5);
}

TEST(Simulator, ScheduleModesAreOrdered) {
  const nn::ModelConfig cfg = tiny_config();
  const MethodSpec m = vanilla_method(cfg);
  SimulatorConfig sim;
  sim.schedule_mode = ScheduleMode::kSearched;
  const MethodReport searched = simulate_method(cfg, m, sim);
  sim.schedule_mode = ScheduleMode::kDefault;
  const MethodReport deflt = simulate_method(cfg, m, sim);
  sim.schedule_mode = ScheduleMode::kNaive;
  const MethodReport naive = simulate_method(cfg, m, sim);
  EXPECT_LE(searched.expected_cycles, deflt.expected_cycles);
  EXPECT_LT(deflt.expected_cycles, naive.expected_cycles);
  EXPECT_GE(searched.utilization, deflt.utilization);
}

TEST(Simulator, RejectsMalformedSpecs) {
  const nn::ModelConfig cfg = tiny_config();
  SimulatorConfig sim;
  MethodSpec m = vanilla_method(cfg);
  m.exit_probs = {0.5};  // doesn't sum to 1
  EXPECT_THROW(simulate_method(cfg, m, sim), std::invalid_argument);
  m = vanilla_method(cfg);
  m.policy.layers.resize(1);
  EXPECT_THROW(simulate_method(cfg, m, sim), std::invalid_argument);
}

TEST(Simulator, ProjectsPaperScaleModels) {
  // A LLaMA-7B-shaped config must simulate fine without allocating weights.
  nn::ModelConfig cfg;
  cfg.vocab = 32000;
  cfg.d_model = 4096;
  cfg.n_layers = 32;
  cfg.n_heads = 32;
  cfg.d_ff = 11008;
  cfg.max_seq = 2048;
  cfg.swiglu = true;
  SimulatorConfig sim;
  sim.batch = 1;
  sim.seq = 512;

  MethodSpec edge;
  edge.name = "edge-llm-7b";
  edge.policy.layers.assign(32, core::LayerPolicy{4, 0.5f});
  edge.exits = {8, 16, 24, 32};
  edge.exit_probs = {0.25, 0.25, 0.25, 0.25};
  edge.backprop_window = 4;

  const MethodReport vanilla = simulate_method(cfg, vanilla_method(cfg), sim);
  const MethodReport e = simulate_method(cfg, edge, sim);
  EXPECT_GT(vanilla.expected_cycles / e.expected_cycles, 2.0);
  // Vanilla 7B adaptation needs tens of GB; Edge-LLM should be far below.
  EXPECT_GT(vanilla.peak_memory_bytes, 30.0e9);
  EXPECT_LT(e.peak_memory_bytes, vanilla.peak_memory_bytes / 4.0);
}

TEST(Pipeline, EndToEndImprovesOverUnadapted) {
  Rng rng(3);
  data::MarkovChain::Config dcfg;
  dcfg.vocab = 24;
  dcfg.order = 1;
  dcfg.branch = 3;
  dcfg.seed = 21;
  const data::MarkovChain base_domain(dcfg);
  const data::MarkovChain target = base_domain.shifted(0.6f, 77);

  auto model = core::pretrain_base_model(tiny_config(), base_domain, 250, 4, 12, rng);

  // Pre-adaptation loss on the shifted domain.
  Rng eval_rng(31);
  std::vector<data::LmBatch> eval_set;
  for (int i = 0; i < 4; ++i) eval_set.push_back(data::sample_lm_batch(target, 4, 12, eval_rng));
  const float before = data::lm_loss(*model, eval_set, model->config().n_layers);

  core::PipelineConfig pcfg;
  pcfg.adaptation_iters = 120;
  pcfg.batch = 4;
  pcfg.seq = 12;
  pcfg.luc.target_effective_bits = 6.0;
  pcfg.tuner.optim.lr = 1e-2f;
  pcfg.sensitivity.bit_candidates = {4, 8};
  pcfg.sensitivity.prune_candidates = {0.0f, 0.3f};
  const core::PipelineResult res = core::run_pipeline(*model, target, pcfg);

  EXPECT_LT(res.voted_loss, before);
  EXPECT_GT(res.mcq_accuracy, 0.3f);
  EXPECT_EQ(res.loss_curve.size(), 120u);
  EXPECT_GT(res.peak_activation_bytes, 0);
  EXPECT_GT(res.model_storage_bytes, 0.0);
  EXPECT_LE(res.policy.avg_effective_bits(), 6.0 + 1e-9);
}

}  // namespace
}  // namespace edgellm::runtime
