// Serving resilience under injected faults: worker stalls and deaths,
// poisoned decode output, KV admission failures, client disconnects,
// deadline storms, the scheduler-stall watchdog — and the seeded soak
// harness that drives >= 1000 faulted ticks asserting the engine's
// survival invariants (every future resolves, counters conserve, no
// leaked KV slots, no deadlock).
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>

#include "runtime/fault.hpp"
#include "serve/engine.hpp"
#include "test_util.hpp"

namespace edgellm::serve {
namespace {

using edgellm::testing::greedy_request;
using edgellm::testing::reference_greedy;
using edgellm::testing::seq_tokens;
using edgellm::testing::tiny_config;

// --- ServeFaultInjector -----------------------------------------------------

TEST(ServeFaultInjector, DeterministicForFixedSeed) {
  runtime::ServeFaultPlan plan;
  plan.worker_stall_prob = 0.3;
  plan.kv_reject_prob = 0.5;
  plan.poison_logits_prob = 0.2;
  plan.seed = 1234;
  runtime::ServeFaultInjector a(plan);
  runtime::ServeFaultInjector b(plan);
  // Identical probe sequences must draw identical fault sequences: the
  // soak harness depends on seeded reproducibility.
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.stall_worker_ms() > 0.0, b.stall_worker_ms() > 0.0) << i;
    EXPECT_EQ(a.reject_kv_acquire(), b.reject_kv_acquire()) << i;
    EXPECT_EQ(a.poison_logits(), b.poison_logits()) << i;
  }
  EXPECT_EQ(a.stalls(), b.stalls());
  EXPECT_EQ(a.kv_rejections(), b.kv_rejections());
  EXPECT_EQ(a.poisons(), b.poisons());
  EXPECT_GT(a.stalls() + a.kv_rejections() + a.poisons(), 0);
}

TEST(ServeFaultInjector, ZeroProbabilitiesNeverFire) {
  runtime::ServeFaultInjector quiet{runtime::ServeFaultPlan{}};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(quiet.stall_worker_ms(), 0.0);
    EXPECT_FALSE(quiet.kill_worker());
    EXPECT_FALSE(quiet.reject_kv_acquire());
    EXPECT_FALSE(quiet.poison_logits());
    EXPECT_FALSE(quiet.disconnect_client());
  }
  EXPECT_EQ(quiet.stalls() + quiet.deaths() + quiet.kv_rejections() + quiet.poisons() +
                quiet.disconnects(),
            0);
}

TEST(ServeFaultInjector, ValidatesPlan) {
  runtime::ServeFaultPlan bad;
  bad.worker_death_prob = 1.5;
  EXPECT_THROW(runtime::ServeFaultInjector{bad}, std::invalid_argument);
  runtime::ServeFaultPlan neg;
  neg.worker_stall_ms = -1.0;
  EXPECT_THROW(runtime::ServeFaultInjector{neg}, std::invalid_argument);
}

// --- engine fault paths -----------------------------------------------------

TEST(ServeEngineFault, WorkerDeathFailsRequestsCleanly) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(71);
  nn::CausalLm model(cfg, rng);
  runtime::ServeFaultPlan plan;
  plan.worker_death_prob = 1.0;  // every decode chunk dies
  runtime::ServeFaultInjector fault(plan);
  EngineConfig ecfg;
  ecfg.threads = 2;
  ecfg.fault = &fault;
  ServeEngine engine(model, ecfg);

  auto f1 = engine.submit(greedy_request(1, seq_tokens(4, cfg.vocab), 6));
  auto f2 = engine.submit(greedy_request(2, seq_tokens(3, cfg.vocab, 1), 6));
  const Completion c1 = f1.get();
  const Completion c2 = f2.get();
  EXPECT_EQ(c1.status, RequestStatus::kFailed);
  EXPECT_EQ(c2.status, RequestStatus::kFailed);
  EXPECT_NE(c1.error.find("injected worker death"), std::string::npos) << c1.error;

  // The engine survives the dead workers: slots are reclaimed and later
  // requests still get served once the faults stop.
  const EngineMetrics m = engine.metrics();
  EXPECT_EQ(m.failed, 2);
  EXPECT_GE(fault.deaths(), 1);
  engine.shutdown();
  EXPECT_EQ(engine.registry().counter("kv/acquired").value(),
            engine.registry().counter("kv/released").value());
}

TEST(ServeEngineFault, PoisonedLogitsFailTheRequest) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(72);
  nn::CausalLm model(cfg, rng);
  runtime::ServeFaultPlan plan;
  plan.poison_logits_prob = 1.0;
  runtime::ServeFaultInjector fault(plan);
  EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.fault = &fault;
  ServeEngine engine(model, ecfg);

  const Completion c = engine.submit(greedy_request(1, seq_tokens(1, cfg.vocab), 4)).get();
  EXPECT_EQ(c.status, RequestStatus::kFailed);
  EXPECT_EQ(c.error, "decode produced non-finite logits");
  EXPECT_TRUE(c.tokens.empty());  // the poisoned token is never surfaced
  EXPECT_EQ(engine.metrics().failed, 1);
  EXPECT_GE(fault.poisons(), 1);
}

TEST(ServeEngineFault, KvRejectionRetriesThenShedsWithReason) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(73);
  nn::CausalLm model(cfg, rng);
  runtime::ServeFaultPlan plan;
  plan.kv_reject_prob = 1.0;  // every admission attempt fails
  runtime::ServeFaultInjector fault(plan);
  EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.fault = &fault;
  ecfg.max_admission_retries = 3;
  ServeEngine engine(model, ecfg);

  const Completion c = engine.submit(greedy_request(1, seq_tokens(2, cfg.vocab), 4)).get();
  EXPECT_EQ(c.status, RequestStatus::kShed);
  EXPECT_NE(c.error.find("kv admission failed after 3 attempts"), std::string::npos) << c.error;
  EXPECT_NE(c.error.find("injected kv admission failure"), std::string::npos) << c.error;
  const EngineMetrics m = engine.metrics();
  EXPECT_EQ(m.shed, 1);
  EXPECT_EQ(m.admission_retries, 3);
  EXPECT_EQ(m.completed, 0);
}

TEST(ServeEngineFault, FlakyKvAdmissionEventuallyServesIdenticalOutput) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(74);
  nn::CausalLm model(cfg, rng);
  const std::vector<int64_t> prompt = seq_tokens(4, cfg.vocab);
  const std::vector<int64_t> want = reference_greedy(model, prompt, 6);

  runtime::ServeFaultPlan plan;
  plan.kv_reject_prob = 0.7;  // transient: retries ride through it
  plan.seed = 99;
  runtime::ServeFaultInjector fault(plan);
  EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.fault = &fault;
  ecfg.retry_backoff_ms = 0.1;
  ServeEngine engine(model, ecfg);  // max_admission_retries = 0: unlimited

  const Completion c = engine.submit(greedy_request(1, prompt, 6)).get();
  EXPECT_EQ(c.status, RequestStatus::kOk);
  EXPECT_EQ(c.tokens, want);  // faults delay but never corrupt the output
  EXPECT_GE(engine.metrics().admission_retries, 1);
  EXPECT_GE(fault.kv_rejections(), 1);
}

TEST(ServeEngineFault, ClientDisconnectCancelsMidDecode) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(75);
  nn::CausalLm model(cfg, rng);
  runtime::ServeFaultPlan plan;
  plan.disconnect_prob = 1.0;
  runtime::ServeFaultInjector fault(plan);
  EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.fault = &fault;
  ServeEngine engine(model, ecfg);

  const Completion c = engine.submit(greedy_request(1, seq_tokens(3, cfg.vocab), 8)).get();
  EXPECT_EQ(c.status, RequestStatus::kCancelled);
  EXPECT_EQ(c.error, "fault: client disconnected");
  EXPECT_EQ(engine.metrics().cancelled, 1);
  EXPECT_GE(fault.disconnects(), 1);
}

TEST(ServeEngineFault, DeadlineStormExpiresEveryQueuedRequest) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(76);
  nn::CausalLm model(cfg, rng);
  EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.max_batch = 2;
  ServeEngine engine(model, ecfg);

  engine.pause();  // everything queues; deadlines tick away
  std::vector<std::future<Completion>> futs;
  for (int64_t i = 0; i < 8; ++i) {
    Request r = greedy_request(i, seq_tokens(3, cfg.vocab, i), 4);
    r.deadline_ms = 5.0;
    futs.push_back(engine.submit(r));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  engine.resume();
  for (auto& f : futs) {
    const Completion c = f.get();
    EXPECT_EQ(c.status, RequestStatus::kExpired);
    EXPECT_TRUE(c.tokens.empty());
  }
  const EngineMetrics m = engine.metrics();
  EXPECT_EQ(m.expired, 8);
  EXPECT_EQ(m.submitted, 8);
  // Expired-in-queue requests never touch the KV pool.
  EXPECT_EQ(engine.registry().counter("kv/acquired").value(), 0);
}

TEST(ServeEngineFault, WatchdogFailsPendingRequestsOnStalledScheduler) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(77);
  nn::CausalLm model(cfg, rng);
  runtime::ServeFaultPlan plan;
  plan.worker_stall_prob = 1.0;
  plan.worker_stall_ms = 400.0;  // wedge every tick well past the watchdog
  runtime::ServeFaultInjector fault(plan);
  EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.fault = &fault;
  ecfg.watchdog_stall_ms = 50;
  ServeEngine engine(model, ecfg);

  const auto t0 = std::chrono::steady_clock::now();
  auto fut = engine.submit(greedy_request(1, seq_tokens(4, cfg.vocab), 8));
  // The future must resolve from the *watchdog*, long before the 400ms
  // stalled decode returns: clients get a clean failure, not a hang.
  ASSERT_EQ(fut.wait_for(std::chrono::milliseconds(300)), std::future_status::ready);
  const Completion c = fut.get();
  EXPECT_EQ(c.status, RequestStatus::kFailed);
  EXPECT_EQ(c.error, "watchdog: scheduler stalled");
  const double resolved_after_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(resolved_after_ms, 390.0);
  EXPECT_EQ(engine.metrics().watchdog_fired, 1);

  // A wedged engine refuses new work instead of queueing futures that can
  // never decode.
  EXPECT_EQ(engine.submit(greedy_request(2, seq_tokens(2, cfg.vocab), 2)).get().status,
            RequestStatus::kRejected);
  // Shutdown joins cleanly once the stalled decode drains, and the slots
  // the wedged batch held come back.
  engine.shutdown();
  EXPECT_EQ(engine.registry().counter("kv/acquired").value(),
            engine.registry().counter("kv/released").value());
  EXPECT_EQ(static_cast<int64_t>(engine.registry().gauge("kv/committed_bytes").value()), 0);
}

TEST(ServeEngineFault, WatchdogStaysQuietOnHealthyEngine) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(78);
  nn::CausalLm model(cfg, rng);
  EngineConfig ecfg;
  ecfg.threads = 2;
  ecfg.watchdog_stall_ms = 200;
  ServeEngine engine(model, ecfg);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(engine.submit(greedy_request(i, seq_tokens(3, cfg.vocab, i), 4)).get().status,
              RequestStatus::kOk);
  }
  // Idle gaps between requests must not look like stalls.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_EQ(engine.submit(greedy_request(9, seq_tokens(3, cfg.vocab), 4)).get().status,
            RequestStatus::kOk);
  EXPECT_EQ(engine.metrics().watchdog_fired, 0);
  EXPECT_EQ(engine.metrics().failed, 0);
}

// --- soak -------------------------------------------------------------------

// The tentpole's survival harness: >= 1000 decode ticks under a seeded mix
// of every injected fault plus quota/overload pressure, asserting the
// engine's global invariants at the end. Runs in seconds on the tiny model;
// CI runs it under ASan and TSan (label serve_fault).
void run_faulted_soak(bool paged_kv) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(79);
  nn::CausalLm model(cfg, rng);
  const int64_t per_pos = nn::KvCache::bytes_per_position(cfg.n_layers, 16, false);

  runtime::ServeFaultPlan plan;
  plan.worker_stall_prob = 0.02;
  plan.worker_stall_ms = 0.2;
  plan.worker_death_prob = 0.01;
  plan.kv_reject_prob = 0.10;
  plan.poison_logits_prob = 0.02;
  plan.disconnect_prob = 0.02;
  plan.seed = 0x50AC;
  runtime::ServeFaultInjector fault(plan);

  EngineConfig ecfg;
  ecfg.threads = 2;
  ecfg.max_batch = 4;
  ecfg.queue_capacity = 16;
  ecfg.kv_byte_budget = 6 * 16 * per_pos;  // real budget pressure
  ecfg.fault = &fault;
  ecfg.max_admission_retries = 4;
  ecfg.retry_backoff_ms = 0.05;
  ecfg.watchdog_stall_ms = 5000;  // enabled, but must never fire here
  ecfg.admission.shed_policy = ShedPolicy::kDegradeEarlyExit;
  ecfg.admission.degrade_queue_ratio = 0.5;
  ecfg.admission.shed_queue_ratio = 0.9;
  ecfg.admission.degrade_kv_ratio = 0.6;
  ecfg.admission.tenant_rate = 400.0;  // quotas on, occasionally binding
  ecfg.admission.tenant_burst = 8.0;
  ecfg.kv_paged = paged_kv;
  ecfg.kv_block_tokens = 4;
  ServeEngine engine(model, ecfg);

  Rng driver(4242);  // seeded request mix: reproducible soak
  const char* tenants[3] = {"alpha", "beta", ""};
  std::vector<std::future<Completion>> futs;
  int64_t next_id = 1;
  while (engine.metrics().ticks < 1000) {
    for (int wave = 0; wave < 6; ++wave) {
      Request r;
      r.id = next_id++;
      r.prompt = seq_tokens(driver.uniform_int(1, 5), cfg.vocab, next_id);
      r.max_new_tokens = driver.uniform_int(1, 6);
      r.temperature = 0.0f;
      r.seed = static_cast<uint64_t>(next_id);
      r.tenant = tenants[driver.uniform_int(0, 2)];
      r.priority = driver.uniform_int(kPriorityHigh, kPriorityLow);
      switch (driver.uniform_int(0, 3)) {
        case 0: r.exit_policy = ExitPolicy::kFinal; break;
        case 1: r.exit_policy = ExitPolicy::kVoted; break;
        case 2:
          r.exit_policy = ExitPolicy::kFixedEarly;
          r.exit_layer = driver.uniform_int(1, 2);
          break;
        default:
          r.exit_policy = ExitPolicy::kSpeculative;
          r.draft_depth = driver.uniform_int(1, 2);
          r.draft_k = driver.uniform_int(1, 8);
          break;
      }
      if (driver.bernoulli(0.15)) r.deadline_ms = 0.5;   // doomed to expire
      else if (driver.bernoulli(0.2)) r.deadline_ms = 50.0;
      futs.push_back(engine.submit(std::move(r)));
      if (driver.bernoulli(0.1)) engine.cancel(next_id - 1);
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  engine.shutdown();  // drains every queued + active request

  // Invariant 1: every future resolves — no request is ever dropped.
  int64_t resolved = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    (void)f.get();
    ++resolved;
  }
  // Invariant 2: counters conserve — every submit is accounted exactly once.
  const EngineMetrics m = engine.metrics();
  EXPECT_EQ(m.submitted, static_cast<int64_t>(futs.size()));
  EXPECT_EQ(m.submitted, m.completed + m.rejected + m.cancelled + m.timed_out + m.shed +
                             m.expired + m.failed);
  EXPECT_GE(m.ticks, 1000);
  EXPECT_EQ(m.watchdog_fired, 0);
  // Invariant 3: no leaked KV slots or bytes after drain.
  EXPECT_EQ(engine.registry().counter("kv/acquired").value(),
            engine.registry().counter("kv/released").value());
  EXPECT_EQ(static_cast<int64_t>(engine.registry().gauge("kv/committed_bytes").value()), 0);
  // Invariant 4: budget invariance. The high-water mark saw real pressure
  // (release() settles dying sequences into it even between tick barriers,
  // so short-lived requests cannot hide from it) yet never exceeded the
  // configured byte budget.
  const int64_t high_water =
      static_cast<int64_t>(engine.registry().gauge("kv/high_water_bytes").value());
  EXPECT_GT(high_water, 0);
  EXPECT_LE(high_water, ecfg.kv_byte_budget);
  const int64_t in_use = static_cast<int64_t>(engine.registry().gauge("kv/bytes_in_use").value());
  EXPECT_LE(in_use, ecfg.kv_byte_budget);
  if (paged_kv) {
    // After drain only unreferenced cached prefixes may hold blocks.
    EXPECT_EQ(engine.registry().gauge("kv/blocks_in_use").value(),
              engine.registry().gauge("kv/blocks_cached").value());
  } else {
    EXPECT_EQ(in_use, 0);
  }
  // The soak actually exercised the machinery: faults fired, pressure shed
  // and degraded work, and plenty of requests still completed.
  EXPECT_GT(fault.stalls() + fault.deaths() + fault.kv_rejections() + fault.poisons() +
                fault.disconnects(),
            0);
  EXPECT_GT(m.completed, 0);
  EXPECT_GT(m.expired + m.shed + m.failed + m.cancelled, 0);
  EXPECT_EQ(resolved, m.submitted);
}

TEST(ServeFaultSoak, ThousandFaultedTicksHoldInvariants) { run_faulted_soak(/*paged_kv=*/false); }

// Same seeded storm through the paged pool: block allocation, prefix
// donation, COW and eviction all run under fault pressure, and the same
// budget/conservation invariants must hold.
TEST(ServeFaultSoak, ThousandFaultedTicksHoldInvariantsPagedKv) {
  run_faulted_soak(/*paged_kv=*/true);
}

}  // namespace
}  // namespace edgellm::serve
