// Fault-tolerance subsystem: atomic CRC-checked checkpoints with rotation,
// bit-exact crash/resume, numeric-fault guards with rollback, and the
// seeded fault-injection harness that exercises all of it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/snapshot.hpp"
#include "nn/serialize.hpp"
#include "runtime/checkpointer.hpp"
#include "runtime/fault.hpp"
#include "test_util.hpp"

namespace edgellm {
namespace {

namespace fs = std::filesystem;
using edgellm::testing::tiny_config;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/edgellm_" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// --- exact payload helpers ---------------------------------------------------

TEST(FaultTolerance, PackHelpersRoundTripExactly) {
  const std::vector<uint64_t> values = {0ull, 1ull, 65535ull, 65536ull, 0x123456789ABCDEF0ull,
                                        std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    EXPECT_EQ(nn::unpack_u64(nn::pack_u64(v)), v);
  }
  std::string bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<char>(i));
  EXPECT_EQ(nn::unpack_bytes(nn::pack_bytes(bytes)), bytes);
  EXPECT_THROW(nn::unpack_u64(Tensor({2})), std::runtime_error);
  EXPECT_THROW(nn::unpack_bytes(Tensor({1}, 300.0f)), std::runtime_error);
}

TEST(FaultTolerance, RngStateRoundTripsBitExactly) {
  Rng a(12345);
  for (int i = 0; i < 100; ++i) (void)a.uniform();
  const std::string state = rng_state_string(a);
  Rng b(1);  // different seed; state restore must fully override it
  set_rng_state_string(b, state);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1 << 30), b.uniform_int(0, 1 << 30));
  }
  EXPECT_THROW(set_rng_state_string(b, "not an engine state"), std::runtime_error);
}

// --- serialization hardening -------------------------------------------------

namespace {

/// Little-endian binary builder for crafting hostile checkpoint images.
struct Builder {
  std::string s;
  void u32(uint32_t v) { s.append(reinterpret_cast<const char*>(&v), sizeof(v)); }
  void u64(uint64_t v) { s.append(reinterpret_cast<const char*>(&v), sizeof(v)); }
  void raw(const void* p, size_t n) { s.append(static_cast<const char*>(p), n); }
  void magic_v1() {
    s.append("ELLM", 4);
    u32(1);  // v1 has no CRC footer, so crafted bodies are parsed directly
  }
};

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(FaultTolerance, LoaderStillReadsVersion1Files) {
  const std::string path = fresh_dir("v1") + "/v1.bin";
  Builder b;
  b.magic_v1();
  b.u64(1);                    // one entry
  b.u64(1);                    // name length
  b.raw("w", 1);               // name
  b.u64(1);                    // rank
  b.u64(3);                    // extent
  const float data[3] = {1.0f, 2.0f, 3.0f};
  b.raw(data, sizeof(data));
  write_file(path, b.s);

  const auto state = nn::load_state_dict_file(path);
  ASSERT_EQ(state.size(), 1u);
  EXPECT_TRUE(state.at("w").equals(Tensor({3}, {1.0f, 2.0f, 3.0f})));
}

TEST(FaultTolerance, LoaderRejectsAbsurdEntryCount) {
  const std::string path = fresh_dir("count") + "/bad.bin";
  Builder b;
  b.magic_v1();
  b.u64(1ull << 40);  // would loop ~10^12 times / allocate forever
  write_file(path, b.s);
  EXPECT_THROW(nn::load_state_dict_file(path), std::runtime_error);
}

TEST(FaultTolerance, LoaderRejectsAbsurdNameLength) {
  const std::string path = fresh_dir("name") + "/bad.bin";
  Builder b;
  b.magic_v1();
  b.u64(1);
  b.u64(1ull << 40);  // name "length" far past any real checkpoint
  write_file(path, b.s);
  EXPECT_THROW(nn::load_state_dict_file(path), std::runtime_error);
}

TEST(FaultTolerance, LoaderRejectsExtentOverflow) {
  const std::string path = fresh_dir("extent") + "/bad.bin";
  Builder b;
  b.magic_v1();
  b.u64(1);
  b.u64(1);
  b.raw("w", 1);
  b.u64(4);  // rank 4, each extent 2^31: product overflows int64
  for (int d = 0; d < 4; ++d) b.u64(1ull << 31);
  write_file(path, b.s);
  EXPECT_THROW(nn::load_state_dict_file(path), std::runtime_error);
}

TEST(FaultTolerance, LoaderRejectsTruncatedData) {
  const std::string dir = fresh_dir("trunc");
  const std::string good = dir + "/good.bin", trunc = dir + "/trunc.bin";
  std::map<std::string, Tensor> state;
  Rng rng(9);
  state.emplace("w", randn({16, 16}, rng));
  nn::save_state_dict(state, good);

  std::ifstream is(good, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  write_file(trunc, bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(nn::load_state_dict_file(trunc), std::runtime_error);
}

TEST(FaultTolerance, CrcDetectsSingleFlippedByte) {
  const std::string path = fresh_dir("crc") + "/ok.bin";
  std::map<std::string, Tensor> state;
  Rng rng(10);
  state.emplace("w", randn({8, 8}, rng));
  nn::save_state_dict(state, path);
  EXPECT_NO_THROW(nn::load_state_dict_file(path));

  runtime::FaultInjector inj({});
  inj.corrupt_file(path, static_cast<int64_t>(fs::file_size(path)) / 2);
  EXPECT_THROW(nn::load_state_dict_file(path), std::runtime_error);
  EXPECT_EQ(inj.corruptions(), 1);
}

TEST(FaultTolerance, SaveLeavesNoTempFileBehind) {
  const std::string dir = fresh_dir("tmpclean");
  const std::string path = dir + "/state.bin";
  std::map<std::string, Tensor> state;
  state.emplace("w", Tensor({4}, 1.5f));
  nn::save_state_dict(state, path);
  int files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1);  // only the committed checkpoint, no .tmp residue
}

// --- checkpointer ------------------------------------------------------------

core::Snapshot make_snapshot(int64_t iter, float fill) {
  core::Snapshot snap;
  snap.iter = iter;
  snap.state.emplace("meta.iter", nn::pack_u64(static_cast<uint64_t>(iter)));
  snap.state.emplace("payload", Tensor({8}, fill));
  return snap;
}

TEST(FaultTolerance, CheckpointerRotatesKeepNAndLoadsNewest) {
  runtime::CheckpointerConfig ccfg;
  ccfg.dir = fresh_dir("rotate");
  ccfg.keep = 3;
  runtime::Checkpointer ckpt(ccfg);

  for (int64_t i = 1; i <= 5; ++i) ckpt.save(make_snapshot(i * 10, static_cast<float>(i)));

  const auto slots = ckpt.slots();
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(runtime::Checkpointer::slot_iter(slots[0]), 30);
  EXPECT_EQ(runtime::Checkpointer::slot_iter(slots[2]), 50);

  const auto latest = ckpt.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->iter, 50);
  EXPECT_TRUE(latest->state.at("payload").equals(Tensor({8}, 5.0f)));
}

TEST(FaultTolerance, CheckpointerFailedSaveIsAtomic) {
  runtime::FaultPlan plan;
  plan.fail_save_index = 1;  // second save dies before commit
  runtime::FaultInjector inj(plan);

  runtime::CheckpointerConfig ccfg;
  ccfg.dir = fresh_dir("atomic");
  ccfg.pre_commit = inj.io_hook();
  runtime::Checkpointer ckpt(ccfg);

  ckpt.save(make_snapshot(10, 1.0f));
  EXPECT_THROW(ckpt.save(make_snapshot(20, 2.0f)), std::runtime_error);
  EXPECT_EQ(inj.io_failures(), 1);

  // The failed save left no slot, no staged .part file, and the previous
  // snapshot still loads.
  int files = 0;
  for (const auto& e : fs::directory_iterator(ccfg.dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1);
  const auto latest = ckpt.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->iter, 10);
}

TEST(FaultTolerance, CorruptedSlotFallsBackToPreviousRotation) {
  runtime::CheckpointerConfig ccfg;
  ccfg.dir = fresh_dir("fallback");
  runtime::Checkpointer ckpt(ccfg);
  ckpt.save(make_snapshot(10, 1.0f));
  ckpt.save(make_snapshot(20, 2.0f));

  runtime::FaultInjector inj({});
  inj.corrupt_file(ckpt.slots().back().string());  // seeded-random byte flip

  const auto latest = ckpt.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->iter, 10);
  EXPECT_TRUE(latest->state.at("payload").equals(Tensor({8}, 1.0f)));
  EXPECT_EQ(ckpt.corrupt_slots_skipped(), 1);
}

TEST(FaultTolerance, EmptyStoreLoadsNothing) {
  runtime::CheckpointerConfig ccfg;
  ccfg.dir = fresh_dir("empty");
  runtime::Checkpointer ckpt(ccfg);
  EXPECT_FALSE(ckpt.load_latest().has_value());
}

// --- numeric-fault guard -----------------------------------------------------

data::MarkovChain test_domain() {
  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  dc.seed = 5;
  return data::MarkovChain(dc);
}

TEST(FaultTolerance, NanGuardSkipsUpdateAndTripsRollback) {
  Rng rng(21);
  nn::CausalLm model(tiny_config(), rng);
  core::TunerConfig tcfg;
  tcfg.sampling = core::DepthSampling::kFinalOnly;
  tcfg.max_consecutive_bad = 2;
  tcfg.grad_hook = [](int64_t iter, Tensor& grad) {
    if (iter >= 1 && iter <= 2) grad[0] = std::numeric_limits<float>::quiet_NaN();
  };
  core::AdaptiveLayerTuner tuner(model, tcfg, Rng(22));
  const float lr0 = tuner.base_lr();

  const data::MarkovChain domain = test_domain();
  Rng drng(23);
  const auto batch = data::sample_lm_batch(domain, 2, 8, drng);

  // Clean step updates weights.
  auto before = model.state_dict();
  auto st = tuner.step(batch);
  EXPECT_FALSE(st.skipped);
  EXPECT_EQ(tuner.consecutive_bad_steps(), 0);

  // Poisoned steps leave every weight and the optimizer untouched.
  before = model.state_dict();
  const int64_t optim_bytes = tuner.optimizer().state_bytes();
  st = tuner.step(batch);
  EXPECT_TRUE(st.skipped);
  EXPECT_EQ(tuner.bad_steps(), 1);
  EXPECT_FALSE(tuner.needs_rollback());
  for (const auto& [name, t] : model.state_dict()) {
    EXPECT_TRUE(t.equals(before.at(name))) << name;
  }
  EXPECT_EQ(tuner.optimizer().state_bytes(), optim_bytes);

  st = tuner.step(batch);
  EXPECT_TRUE(st.skipped);
  EXPECT_EQ(tuner.consecutive_bad_steps(), 2);
  EXPECT_TRUE(tuner.needs_rollback());

  // Rollback acknowledgment: streak resets, base lr backs off.
  tuner.note_rollback();
  EXPECT_FALSE(tuner.needs_rollback());
  EXPECT_EQ(tuner.rollbacks(), 1);
  EXPECT_FLOAT_EQ(tuner.base_lr(), lr0 * tcfg.lr_backoff);

  // And a clean step afterwards trains again.
  st = tuner.step(batch);
  EXPECT_FALSE(st.skipped);
  EXPECT_EQ(tuner.consecutive_bad_steps(), 0);
}

// --- crash/resume bit-exactness ----------------------------------------------

core::PipelineConfig small_pipeline_config() {
  core::PipelineConfig cfg;
  cfg.adaptation_iters = 30;
  cfg.batch = 2;
  cfg.seq = 8;
  cfg.calib_batches = 2;
  cfg.eval_batches = 2;
  cfg.apply_compression = false;
  cfg.tuner.optim.lr = 5e-3f;
  return cfg;
}

nn::CausalLm fresh_model() {
  Rng rng(31);
  return nn::CausalLm(tiny_config(), rng);
}

void expect_bit_exact(const core::PipelineResult& a, const core::PipelineResult& b,
                      nn::CausalLm& ma, nn::CausalLm& mb) {
  ASSERT_EQ(a.loss_curve.size(), b.loss_curve.size());
  for (size_t i = 0; i < a.loss_curve.size(); ++i) {
    EXPECT_EQ(a.loss_curve[i], b.loss_curve[i]) << "loss curve diverges at iter " << i;
  }
  EXPECT_EQ(a.final_exit_loss, b.final_exit_loss);
  EXPECT_EQ(a.voted_loss, b.voted_loss);
  EXPECT_EQ(a.mcq_accuracy, b.mcq_accuracy);
  const auto sa = ma.state_dict();
  const auto sb = mb.state_dict();
  ASSERT_EQ(sa.size(), sb.size());
  for (const auto& [name, t] : sa) {
    EXPECT_TRUE(t.equals(sb.at(name))) << "weight mismatch: " << name;
  }
}

TEST(FaultTolerance, CrashResumeIsBitExact) {
  const data::MarkovChain domain = test_domain();

  // Reference: uninterrupted run.
  nn::CausalLm straight = fresh_model();
  const auto ref = core::run_pipeline(straight, domain, small_pipeline_config());

  // Same run, power-cut before iteration 17 (snapshots land at 10 and 20).
  const std::string dir = fresh_dir("resume");
  runtime::FaultPlan plan;
  plan.power_loss_at = 17;
  runtime::FaultInjector inj(plan);
  {
    nn::CausalLm victim = fresh_model();
    core::PipelineConfig cfg = small_pipeline_config();
    runtime::CheckpointerConfig ccfg;
    ccfg.dir = dir;
    runtime::Checkpointer ckpt(ccfg);
    cfg.snapshots = &ckpt;
    cfg.checkpoint_every = 10;
    cfg.before_step = inj.step_hook();
    EXPECT_THROW(core::run_pipeline(victim, domain, cfg), runtime::PowerLossError);
    EXPECT_EQ(inj.power_losses(), 1);
  }

  // "Reboot": fresh process state, resume from the surviving snapshot.
  nn::CausalLm resumed = fresh_model();
  core::PipelineConfig cfg = small_pipeline_config();
  runtime::CheckpointerConfig ccfg;
  ccfg.dir = dir;
  runtime::Checkpointer ckpt(ccfg);
  cfg.snapshots = &ckpt;
  cfg.checkpoint_every = 10;
  cfg.resume = true;
  const auto res = core::run_pipeline(resumed, domain, cfg);

  EXPECT_EQ(res.resumed_from_iter, 10);
  expect_bit_exact(ref, res, straight, resumed);
}

TEST(FaultTolerance, CrashResumeIsBitExactWithQuantizedOptimizer) {
  const data::MarkovChain domain = test_domain();
  auto make_cfg = [] {
    core::PipelineConfig cfg = small_pipeline_config();
    cfg.adaptation_iters = 24;
    // Exercises the int8 moment + stochastic-rounding-stream round-trip.
    cfg.tuner.quantized_optimizer = true;
    return cfg;
  };

  nn::CausalLm straight = fresh_model();
  const auto ref = core::run_pipeline(straight, domain, make_cfg());

  const std::string dir = fresh_dir("resume_q");
  runtime::FaultPlan plan;
  plan.power_loss_at = 13;
  runtime::FaultInjector inj(plan);
  {
    nn::CausalLm victim = fresh_model();
    core::PipelineConfig cfg = make_cfg();
    runtime::CheckpointerConfig ccfg;
    ccfg.dir = dir;
    runtime::Checkpointer ckpt(ccfg);
    cfg.snapshots = &ckpt;
    cfg.checkpoint_every = 8;
    cfg.before_step = inj.step_hook();
    EXPECT_THROW(core::run_pipeline(victim, domain, cfg), runtime::PowerLossError);
  }

  nn::CausalLm resumed = fresh_model();
  core::PipelineConfig cfg = make_cfg();
  runtime::CheckpointerConfig ccfg;
  ccfg.dir = dir;
  runtime::Checkpointer ckpt(ccfg);
  cfg.snapshots = &ckpt;
  cfg.checkpoint_every = 8;
  cfg.resume = true;
  const auto res = core::run_pipeline(resumed, domain, cfg);

  EXPECT_EQ(res.resumed_from_iter, 8);
  expect_bit_exact(ref, res, straight, resumed);
}

TEST(FaultTolerance, ResumeFallsBackPastCorruptedSlot) {
  const data::MarkovChain domain = test_domain();

  nn::CausalLm straight = fresh_model();
  const auto ref = core::run_pipeline(straight, domain, small_pipeline_config());

  const std::string dir = fresh_dir("resume_corrupt");
  runtime::FaultPlan plan;
  plan.power_loss_at = 25;  // snapshots at 10 and 20 exist when power dies
  runtime::FaultInjector inj(plan);
  {
    nn::CausalLm victim = fresh_model();
    core::PipelineConfig cfg = small_pipeline_config();
    runtime::CheckpointerConfig ccfg;
    ccfg.dir = dir;
    runtime::Checkpointer ckpt(ccfg);
    cfg.snapshots = &ckpt;
    cfg.checkpoint_every = 10;
    cfg.before_step = inj.step_hook();
    EXPECT_THROW(core::run_pipeline(victim, domain, cfg), runtime::PowerLossError);
  }

  // Bit rot hits the newest slot while the device is down.
  nn::CausalLm resumed = fresh_model();
  core::PipelineConfig cfg = small_pipeline_config();
  runtime::CheckpointerConfig ccfg;
  ccfg.dir = dir;
  runtime::Checkpointer ckpt(ccfg);
  inj.corrupt_file(ckpt.slots().back().string());
  cfg.snapshots = &ckpt;
  cfg.checkpoint_every = 10;
  cfg.resume = true;
  const auto res = core::run_pipeline(resumed, domain, cfg);

  // Recovery re-ran from the older good slot — and still matches the
  // uninterrupted run exactly, because snapshots restore the full state.
  EXPECT_EQ(res.resumed_from_iter, 10);
  EXPECT_EQ(ckpt.corrupt_slots_skipped(), 1);
  expect_bit_exact(ref, res, straight, resumed);
}

TEST(FaultTolerance, PipelineRollsBackOnNanBurstAndCompletes) {
  const data::MarkovChain domain = test_domain();
  const std::string dir = fresh_dir("rollback");

  runtime::FaultPlan plan;
  plan.nan_grad_at = {12, 13, 14};  // one full bad streak (default K = 3)
  runtime::FaultInjector inj(plan);

  nn::CausalLm model = fresh_model();
  core::PipelineConfig cfg = small_pipeline_config();
  runtime::CheckpointerConfig ccfg;
  ccfg.dir = dir;
  runtime::Checkpointer ckpt(ccfg);
  cfg.snapshots = &ckpt;
  cfg.checkpoint_every = 5;
  cfg.tuner.grad_hook = inj.grad_hook();
  const auto res = core::run_pipeline(model, domain, cfg);

  EXPECT_EQ(inj.nan_injections(), 3);
  EXPECT_EQ(res.skipped_steps, 3);
  EXPECT_EQ(res.rollbacks, 1);
  // The rollback rewound the curve; the finished run has a full, finite one.
  ASSERT_EQ(res.loss_curve.size(), static_cast<size_t>(cfg.adaptation_iters));
  for (float l : res.loss_curve) EXPECT_TRUE(std::isfinite(l));
  for (const auto& [name, t] : model.state_dict()) {
    for (int64_t i = 0; i < t.numel(); ++i) {
      ASSERT_TRUE(std::isfinite(t[i])) << name;
    }
  }
}

TEST(FaultTolerance, ResumeWorksAcrossCompressionPath) {
  // Compression (sensitivity -> LUC -> masks/quant) runs before adaptation;
  // resume must re-derive it deterministically and then overwrite weights
  // from the snapshot.
  const data::MarkovChain domain = test_domain();
  auto make_cfg = [] {
    core::PipelineConfig cfg = small_pipeline_config();
    cfg.adaptation_iters = 16;
    cfg.apply_compression = true;
    return cfg;
  };

  nn::CausalLm straight = fresh_model();
  const auto ref = core::run_pipeline(straight, domain, make_cfg());

  const std::string dir = fresh_dir("resume_luc");
  runtime::FaultPlan plan;
  plan.power_loss_at = 11;
  runtime::FaultInjector inj(plan);
  {
    nn::CausalLm victim = fresh_model();
    core::PipelineConfig cfg = make_cfg();
    runtime::CheckpointerConfig ccfg;
    ccfg.dir = dir;
    runtime::Checkpointer ckpt(ccfg);
    cfg.snapshots = &ckpt;
    cfg.checkpoint_every = 8;
    cfg.before_step = inj.step_hook();
    EXPECT_THROW(core::run_pipeline(victim, domain, cfg), runtime::PowerLossError);
  }

  nn::CausalLm resumed = fresh_model();
  core::PipelineConfig cfg = make_cfg();
  runtime::CheckpointerConfig ccfg;
  ccfg.dir = dir;
  runtime::Checkpointer ckpt(ccfg);
  cfg.snapshots = &ckpt;
  cfg.checkpoint_every = 8;
  cfg.resume = true;
  const auto res = core::run_pipeline(resumed, domain, cfg);

  EXPECT_EQ(res.resumed_from_iter, 8);
  expect_bit_exact(ref, res, straight, resumed);
}

}  // namespace
}  // namespace edgellm
