// The deterministic thread-pool compute backend (tensor/parallel.hpp) and
// the kernel-numerics contracts that ride on it:
//   - parallel_for covers ranges exactly once, nests without deadlock, and
//     falls back to serial execution when it should;
//   - every parallelised kernel is bitwise identical to its serial result
//     at any thread count (the backend's core guarantee);
//   - the dense matmul/bmm variants propagate NaN/Inf per IEEE semantics
//     (0 * NaN == NaN), and the _skipzero variants document the masking
//     they trade for the sparsity fast path;
//   - KvCachePool metrics accessors are safe to poll concurrently (run
//     under TSan in CI);
//   - training steps and served greedy decode are bitwise reproducible
//     across compute-thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/tuner.hpp"
#include "nn/decoder.hpp"
#include "serve/engine.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "test_util.hpp"

namespace edgellm {
namespace {

using edgellm::testing::tiny_config;

/// Restores the process-global compute thread count on scope exit so tests
/// can't leak a setting into each other.
struct ThreadGuard {
  int64_t prev = parallel::num_threads();
  ~ThreadGuard() { parallel::set_num_threads(prev); }
};

Tensor rand_tensor(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.uniform(-1.0f, 1.0f);
  return t;
}

void expect_bitwise_equal(const Tensor& got, const Tensor& want, const char* what) {
  ASSERT_EQ(got.numel(), want.numel()) << what;
  for (int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << what << " diverges at linear index " << i;
  }
}

// --- parallel_for mechanics -------------------------------------------------

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadGuard guard;
  parallel::set_num_threads(4);
  std::vector<std::atomic<int>> hits(101);
  parallel::parallel_for(0, 101, 7, [&](int64_t lo, int64_t hi) {
    EXPECT_LE(lo, hi);
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, EmptyRangeInvokesNothing) {
  ThreadGuard guard;
  parallel::set_num_threads(4);
  int calls = 0;
  parallel::parallel_for(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  parallel::parallel_for(9, 3, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, BadGrainClampsToOne) {
  ThreadGuard guard;
  parallel::set_num_threads(2);
  std::vector<std::atomic<int>> hits(10);
  parallel::parallel_for(0, 10, 0, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, SetNumThreadsClampsAndReports) {
  ThreadGuard guard;
  parallel::set_num_threads(0);
  EXPECT_EQ(parallel::num_threads(), 1);
  parallel::set_num_threads(-5);
  EXPECT_EQ(parallel::num_threads(), 1);
  parallel::set_num_threads(3);
  EXPECT_EQ(parallel::num_threads(), 3);
}

TEST(ParallelFor, ReportsParallelRegion) {
  ThreadGuard guard;
  parallel::set_num_threads(2);
  EXPECT_FALSE(parallel::in_parallel_region());
  std::atomic<int> seen_inside{0};
  parallel::parallel_for(0, 8, 1, [&](int64_t, int64_t) {
    if (parallel::in_parallel_region()) seen_inside.fetch_add(1);
  });
  EXPECT_GT(seen_inside.load(), 0);
  EXPECT_FALSE(parallel::in_parallel_region());
}

// A chunk body that throws must not terminate the process: the first
// exception is rethrown on the calling thread after the join (matching
// serial propagation), and the pool stays usable afterwards.
TEST(ParallelFor, ChunkExceptionRethrownOnCaller) {
  ThreadGuard guard;
  parallel::set_num_threads(4);
  EXPECT_THROW(parallel::parallel_for(0, 32, 1,
                                      [&](int64_t lo, int64_t) {
                                        if (lo == 0) throw std::runtime_error("chunk boom");
                                      }),
               std::runtime_error);
  // Serial fallback path propagates too.
  parallel::set_num_threads(1);
  EXPECT_THROW(parallel::parallel_for(
                   0, 4, 1, [&](int64_t, int64_t) { throw std::runtime_error("serial boom"); }),
               std::runtime_error);
  // The pool survives: a subsequent clean job covers the range exactly once.
  parallel::set_num_threads(4);
  std::vector<std::atomic<int>> hits(32);
  parallel::parallel_for(0, 32, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

// NumThreadsScope is how per-call knobs (GenerateConfig::n_threads) apply
// the setting without leaking it: the prior global count is restored on
// scope exit, and n <= 0 never touches the global at all.
TEST(ParallelFor, NumThreadsScopeRestoresPriorCount) {
  ThreadGuard guard;
  parallel::set_num_threads(3);
  {
    parallel::NumThreadsScope scope(5);
    EXPECT_EQ(parallel::num_threads(), 5);
    parallel::NumThreadsScope noop(0);
    EXPECT_EQ(parallel::num_threads(), 5);
  }
  EXPECT_EQ(parallel::num_threads(), 3);
}

// Nested parallel_for must run serially on the calling thread instead of
// re-entering the pool — the test completing at all is the deadlock check.
TEST(ParallelFor, NestedCallsRunSerialWithoutDeadlock) {
  ThreadGuard guard;
  parallel::set_num_threads(4);
  std::vector<std::atomic<int>> hits(8 * 16);
  parallel::parallel_for(0, 8, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      parallel::parallel_for(0, 16, 1, [&](int64_t jlo, int64_t jhi) {
        for (int64_t j = jlo; j < jhi; ++j) hits[static_cast<size_t>(i * 16 + j)].fetch_add(1);
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "cell " << i;
}

// Concurrent fan-outs from independent threads (the serving engine's decode
// workers do exactly this) must serialise on the pool, not corrupt state.
TEST(ParallelFor, ConcurrentCallersAreSafe) {
  ThreadGuard guard;
  parallel::set_num_threads(2);
  constexpr int kCallers = 4;
  constexpr int64_t kN = 64;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) h = std::vector<std::atomic<int>>(kN);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int rep = 0; rep < 10; ++rep) {
        parallel::parallel_for(0, kN, 4, [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(c)][static_cast<size_t>(i)]
              .fetch_add(1);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (int64_t i = 0; i < kN; ++i) EXPECT_EQ(hits[static_cast<size_t>(c)][static_cast<size_t>(i)].load(), 10);
  }
}

// --- kernel determinism across thread counts --------------------------------

// Every parallelised kernel, odd sizes so chunks straddle boundaries.
// Reference is the serial (1-thread) result; 2 and 8 threads must match it
// bit for bit.
TEST(Determinism, MatmulVariantsBitwiseIdenticalAcrossThreads) {
  ThreadGuard guard;
  Rng rng(123);
  const int64_t m = 13, k = 7, n = 9, bs = 5;
  const Tensor a = rand_tensor({m, k}, rng);
  const Tensor b = rand_tensor({k, n}, rng);
  const Tensor a_t = rand_tensor({k, m}, rng);
  const Tensor b_t = rand_tensor({n, k}, rng);
  const Tensor ba = rand_tensor({bs, m, k}, rng);
  const Tensor bb = rand_tensor({bs, k, n}, rng);
  const Tensor bb_t = rand_tensor({bs, n, k}, rng);
  const Tensor ba_t = rand_tensor({bs, k, m}, rng);

  parallel::set_num_threads(1);
  const Tensor r_mm = ops::matmul(a, b);
  const Tensor r_tn = ops::matmul_tn(a_t, b);
  const Tensor r_nt = ops::matmul_nt(a, b_t);
  const Tensor r_bmm = ops::bmm(ba, bb);
  const Tensor r_bnt = ops::bmm_nt(ba, bb_t);
  const Tensor r_btn = ops::bmm_tn(ba_t, bb);
  const Tensor r_mm_sz = ops::matmul_skipzero(a, b);
  const Tensor r_btn_sz = ops::bmm_tn_skipzero(ba_t, bb);

  for (const int64_t nt : {2, 8}) {
    parallel::set_num_threads(nt);
    expect_bitwise_equal(ops::matmul(a, b), r_mm, "matmul");
    expect_bitwise_equal(ops::matmul_tn(a_t, b), r_tn, "matmul_tn");
    expect_bitwise_equal(ops::matmul_nt(a, b_t), r_nt, "matmul_nt");
    expect_bitwise_equal(ops::bmm(ba, bb), r_bmm, "bmm");
    expect_bitwise_equal(ops::bmm_nt(ba, bb_t), r_bnt, "bmm_nt");
    expect_bitwise_equal(ops::bmm_tn(ba_t, bb), r_btn, "bmm_tn");
    expect_bitwise_equal(ops::matmul_skipzero(a, b), r_mm_sz, "matmul_skipzero");
    expect_bitwise_equal(ops::bmm_tn_skipzero(ba_t, bb), r_btn_sz, "bmm_tn_skipzero");
  }
}

TEST(Determinism, ElementwiseAndSoftmaxBitwiseIdenticalAcrossThreads) {
  ThreadGuard guard;
  Rng rng(77);
  const Tensor x = rand_tensor({5, 33}, rng);
  const Tensor y = rand_tensor({5, 33}, rng);
  const Tensor bias = rand_tensor({33}, rng);

  parallel::set_num_threads(1);
  const Tensor r_add = ops::add(x, y);
  const Tensor r_mul = ops::mul(x, y);
  const Tensor r_bias = ops::add_bias(x, bias);
  const Tensor r_gelu = ops::gelu(x);
  const Tensor r_silu = ops::silu(x);
  const Tensor r_sm = ops::softmax_lastdim(x);
  const Tensor r_smb = ops::softmax_lastdim_backward(r_sm, y);
  const std::vector<int64_t> r_arg = ops::argmax_lastdim(x);

  for (const int64_t nt : {2, 8}) {
    parallel::set_num_threads(nt);
    expect_bitwise_equal(ops::add(x, y), r_add, "add");
    expect_bitwise_equal(ops::mul(x, y), r_mul, "mul");
    expect_bitwise_equal(ops::add_bias(x, bias), r_bias, "add_bias");
    expect_bitwise_equal(ops::gelu(x), r_gelu, "gelu");
    expect_bitwise_equal(ops::silu(x), r_silu, "silu");
    expect_bitwise_equal(ops::softmax_lastdim(x), r_sm, "softmax_lastdim");
    expect_bitwise_equal(ops::softmax_lastdim_backward(r_sm, y), r_smb, "softmax backward");
    EXPECT_EQ(ops::argmax_lastdim(x), r_arg) << "argmax at " << nt << " threads";
  }
}

// --- IEEE NaN/Inf propagation (the zero-skip bugfix) ------------------------

// The old kernels skipped the inner loop when A[i,p] == 0, so a zero in A
// silently masked a NaN/Inf in B. The dense variants must now propagate:
// 0 * NaN == NaN and 0 * Inf == NaN.
TEST(Numerics, MatmulPropagatesNanThroughZeroRows) {
  ThreadGuard guard;
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  for (const int64_t nt : {1, 4}) {
    parallel::set_num_threads(nt);

    Tensor a({2, 3});  // all zeros
    Tensor b({3, 2});
    b.at(1, 0) = qnan;
    b.at(2, 1) = inf;
    const Tensor c = ops::matmul(a, b);
    EXPECT_TRUE(std::isnan(c.at(0, 0))) << "0 * NaN must be NaN (nt=" << nt << ")";
    EXPECT_TRUE(std::isnan(c.at(1, 0)));
    EXPECT_TRUE(std::isnan(c.at(0, 1))) << "0 * Inf must be NaN (nt=" << nt << ")";
    EXPECT_TRUE(std::isnan(c.at(1, 1)));
  }
}

TEST(Numerics, MatmulTnAndNtPropagateNan) {
  ThreadGuard guard;
  const float qnan = std::numeric_limits<float>::quiet_NaN();

  Tensor a_t({3, 2});  // stored [k,m], all zeros
  Tensor b({3, 2});
  b.at(0, 1) = qnan;
  const Tensor c_tn = ops::matmul_tn(a_t, b);
  EXPECT_TRUE(std::isnan(c_tn.at(0, 1)));
  EXPECT_TRUE(std::isnan(c_tn.at(1, 1)));

  Tensor a({2, 3});  // all zeros
  Tensor b_t({2, 3});  // stored [n,k]
  b_t.at(1, 2) = qnan;
  const Tensor c_nt = ops::matmul_nt(a, b_t);
  EXPECT_TRUE(std::isnan(c_nt.at(0, 1)));
  EXPECT_TRUE(std::isnan(c_nt.at(1, 1)));
}

TEST(Numerics, BmmVariantsPropagateNan) {
  ThreadGuard guard;
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  const int64_t bs = 2, m = 2, k = 3, n = 2;

  // NaN planted in batch 1 only — batch 0 must stay clean (checks batch
  // indexing as well as propagation).
  Tensor ba({bs, m, k});
  Tensor bb({bs, k, n});
  bb.at(1, 0, 0) = qnan;
  const Tensor c = ops::bmm(ba, bb);
  EXPECT_EQ(c.at(0, 0, 0), 0.0f);
  EXPECT_TRUE(std::isnan(c.at(1, 0, 0)));
  EXPECT_TRUE(std::isnan(c.at(1, 1, 0)));

  Tensor bb_t({bs, n, k});
  bb_t.at(1, 1, 0) = qnan;
  const Tensor c_nt = ops::bmm_nt(ba, bb_t);
  EXPECT_EQ(c_nt.at(0, 1, 1), 0.0f);
  EXPECT_TRUE(std::isnan(c_nt.at(1, 0, 1)));

  Tensor ba_t({bs, k, m});
  Tensor bb2({bs, k, n});
  bb2.at(1, 2, 1) = qnan;
  const Tensor c_tn = ops::bmm_tn(ba_t, bb2);
  EXPECT_EQ(c_tn.at(0, 0, 1), 0.0f);
  EXPECT_TRUE(std::isnan(c_tn.at(1, 0, 1)));
  EXPECT_TRUE(std::isnan(c_tn.at(1, 1, 1)));
}

// The _skipzero variants keep the old fast path — and its documented
// contract: a zero in A masks a NaN at the matching position of B. This
// test pins the contract so a change to it is a deliberate decision.
TEST(Numerics, SkipzeroVariantsMaskNanBehindZeros) {
  ThreadGuard guard;
  const float qnan = std::numeric_limits<float>::quiet_NaN();

  Tensor a({2, 3});  // all zeros -> every product is skipped
  Tensor b({3, 2});
  b.at(1, 0) = qnan;
  const Tensor c = ops::matmul_skipzero(a, b);
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c[i], 0.0f) << i;

  Tensor ba_t({1, 3, 2});
  Tensor bb({1, 3, 2});
  bb.at(0, 0, 0) = qnan;
  const Tensor c_tn = ops::bmm_tn_skipzero(ba_t, bb);
  for (int64_t i = 0; i < c_tn.numel(); ++i) EXPECT_EQ(c_tn[i], 0.0f) << i;
}

// On finite inputs the skipzero fast path must agree with the dense kernel
// exactly: it skips terms that contribute +0.0f in the same accumulation
// order, so results are bitwise identical.
TEST(Numerics, SkipzeroMatchesDenseOnFiniteInputs) {
  ThreadGuard guard;
  Rng rng(9);
  Tensor a = rand_tensor({6, 8}, rng);
  const Tensor b = rand_tensor({8, 5}, rng);
  for (int64_t i = 0; i < a.numel(); i += 3) a[i] = 0.0f;  // plant real sparsity
  expect_bitwise_equal(ops::matmul_skipzero(a, b), ops::matmul(a, b), "skipzero vs dense");

  Tensor ba_t = rand_tensor({3, 4, 6}, rng);
  const Tensor bb = rand_tensor({3, 4, 5}, rng);
  for (int64_t i = 0; i < ba_t.numel(); i += 2) ba_t[i] = 0.0f;
  expect_bitwise_equal(ops::bmm_tn_skipzero(ba_t, bb), ops::bmm_tn(ba_t, bb),
                       "bmm_tn_skipzero vs dense");
}

// --- KvCachePool concurrent metrics (TSan target) ---------------------------

// Metrics accessors are const and documented safe to poll from any thread
// while the scheduler acquires/releases, appends, and refreshes the byte
// accounting via sync_live_bytes() at its barriers. They read only cached
// mutex-guarded counters — never slot contents, which are unlocked. A
// poller hammers every accessor while the main thread plays the
// scheduler; TSan in CI turns any missing lock into a failure, and the
// invariant checks catch torn accounting.
TEST(KvCachePoolThreads, MetricsPollingRacesAcquireRelease) {
  serve::KvPoolConfig cfg;
  cfg.n_slots = 4;
  cfg.kv_dim = 16;
  cfg.byte_budget = 0;
  serve::KvCachePool pool(cfg);

  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load()) {
      const int64_t live = pool.bytes_in_use();
      EXPECT_GE(live, 0);
      EXPECT_GE(pool.committed_bytes(), 0);
      EXPECT_GE(pool.high_water_bytes(), live);  // mark never trails a live read
      const int64_t used = pool.slots_in_use();
      EXPECT_GE(used, 0);
      EXPECT_LE(used, 4);
    }
  });

  std::vector<float> row(16, 1.0f);
  for (int rep = 0; rep < 200; ++rep) {
    const int64_t a = pool.acquire(4, 1);
    const int64_t b = pool.acquire(4, 1);
    ASSERT_GE(a, 0);
    ASSERT_GE(b, 0);
    pool.slot(a).append(0, row.data(), row.data());
    pool.slot(b).append(0, row.data(), row.data());
    // The scheduler's tick barrier: no appends in flight, so it may read
    // slot contents to refresh the accounting the poller reads.
    EXPECT_GT(pool.sync_live_bytes(), 0);
    pool.release(a);
    pool.release(b);
  }
  stop.store(true);
  poller.join();
  EXPECT_EQ(pool.slots_in_use(), 0);
  EXPECT_EQ(pool.bytes_in_use(), 0);
  EXPECT_GT(pool.high_water_bytes(), 0);
}

// --- end-to-end determinism across compute-thread counts --------------------

data::MarkovChain train_domain() {
  data::MarkovChain::Config cfg;
  cfg.vocab = 24;
  cfg.order = 1;
  cfg.branch = 3;
  cfg.mass = 0.85f;
  cfg.seed = 5;
  return data::MarkovChain(cfg);
}

// A short training run (fresh identically-seeded model each time) must
// produce bitwise-equal losses and weights at 1, 2, and 8 compute threads.
TEST(DeterminismEndToEnd, TrainingStepsBitwiseReproducibleAcrossThreads) {
  ThreadGuard guard;
  const data::MarkovChain domain = train_domain();

  auto run = [&](int64_t nt) {
    parallel::set_num_threads(nt);
    Rng rng(3);
    nn::CausalLm model(tiny_config(), rng);
    core::TunerConfig cfg;
    cfg.sampling = core::DepthSampling::kCyclic;
    cfg.backprop_window = 2;
    cfg.optim.lr = 1e-2f;
    core::AdaptiveLayerTuner tuner(model, cfg, Rng(7));
    Rng data_rng(11);
    std::vector<float> losses;
    for (int i = 0; i < 3; ++i) {
      const auto batch = data::sample_lm_batch(domain, 4, 12, data_rng);
      losses.push_back(tuner.step(batch).loss);
    }
    std::vector<nn::Param*> params;
    model.collect_params(params);
    std::vector<float> weights;
    for (const nn::Param* p : params) {
      for (int64_t i = 0; i < p->value.numel(); ++i) weights.push_back(p->value[i]);
    }
    return std::make_pair(losses, weights);
  };

  const auto ref = run(1);
  for (const int64_t nt : {2, 8}) {
    const auto got = run(nt);
    ASSERT_EQ(got.first.size(), ref.first.size());
    for (size_t i = 0; i < ref.first.size(); ++i) {
      EXPECT_EQ(got.first[i], ref.first[i]) << "loss step " << i << " at " << nt << " threads";
    }
    ASSERT_EQ(got.second.size(), ref.second.size());
    for (size_t i = 0; i < ref.second.size(); ++i) {
      ASSERT_EQ(got.second[i], ref.second[i]) << "weight " << i << " at " << nt << " threads";
    }
  }
}

std::vector<int64_t> prompt_tokens(int64_t n, int64_t vocab, int64_t salt) {
  std::vector<int64_t> t(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) t[static_cast<size_t>(i)] = (i * 5 + 2 + salt) % vocab;
  return t;
}

// GenerateConfig::n_threads routes through the same knob; greedy decode is
// bitwise identical at any value.
TEST(DeterminismEndToEnd, GenerateBitwiseReproducibleAcrossThreads) {
  ThreadGuard guard;
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(21);
  nn::CausalLm model(cfg, rng);
  model.set_eval();
  const auto prompt = prompt_tokens(5, cfg.vocab, 1);

  auto decode = [&](int64_t nt) {
    nn::IncrementalDecoder dec(model);
    nn::GenerateConfig g;
    g.max_new_tokens = 8;
    g.temperature = 0.0f;
    g.n_threads = nt;
    Rng srng(0);
    return dec.generate(prompt, g, srng);
  };

  const auto ref = decode(1);
  EXPECT_EQ(decode(2), ref);
  EXPECT_EQ(decode(8), ref);
}

TEST(DeterminismEndToEnd, GenerateConfigRejectsNegativeThreads) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(22);
  nn::CausalLm model(cfg, rng);
  nn::GenerateConfig g;
  g.n_threads = -1;
  EXPECT_THROW(nn::validate_generate_config(g, model), std::invalid_argument);
}

// Batch-4 served greedy decode must produce identical completions at
// compute_threads 1, 2, and 8 — and match the single-sequence reference.
TEST(DeterminismEndToEnd, ServedDecodeBitwiseReproducibleAcrossThreads) {
  ThreadGuard guard;
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(40);
  nn::CausalLm model(cfg, rng);

  std::vector<std::vector<int64_t>> prompts;
  for (int64_t i = 0; i < 4; ++i) prompts.push_back(prompt_tokens(4, cfg.vocab, i * 3));

  std::vector<std::vector<int64_t>> want;
  for (const auto& p : prompts) {
    nn::IncrementalDecoder dec(model);
    nn::GenerateConfig g;
    g.max_new_tokens = 6;
    g.temperature = 0.0f;
    Rng srng(0);
    want.push_back(dec.generate(p, g, srng));
  }

  for (const int64_t nt : {1, 2, 8}) {
    serve::EngineConfig ecfg;
    ecfg.max_batch = 4;
    ecfg.threads = 2;  // batch sharding, orthogonal to compute threads
    ecfg.compute_threads = nt;
    serve::ServeEngine engine(model, ecfg);
    std::vector<std::future<serve::Completion>> futs;
    for (size_t i = 0; i < prompts.size(); ++i) {
      serve::Request r;
      r.id = static_cast<int64_t>(i);
      r.prompt = prompts[i];
      r.max_new_tokens = 6;
      r.temperature = 0.0f;
      futs.push_back(engine.submit(std::move(r)));
    }
    for (size_t i = 0; i < futs.size(); ++i) {
      const serve::Completion c = futs[i].get();
      EXPECT_EQ(c.status, serve::RequestStatus::kOk);
      EXPECT_EQ(c.tokens, want[i]) << "request " << i << " at compute_threads=" << nt;
    }
    engine.shutdown();
  }
}

TEST(DeterminismEndToEnd, EngineRejectsNegativeComputeThreads) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(41);
  nn::CausalLm model(cfg, rng);
  serve::EngineConfig ecfg;
  ecfg.compute_threads = -2;
  EXPECT_THROW(serve::ServeEngine engine(model, ecfg), std::invalid_argument);
}

}  // namespace
}  // namespace edgellm
