#include <gtest/gtest.h>

#include <cmath>

#include "prune/prune.hpp"
#include "tensor/rng.hpp"

namespace edgellm::prune {
namespace {

TEST(Prune, SpecValidation) {
  PruneSpec s;
  s.sparsity = 1.0f;
  EXPECT_THROW(validate_spec(s), std::invalid_argument);
  s.sparsity = -0.1f;
  EXPECT_THROW(validate_spec(s), std::invalid_argument);
  s.sparsity = 0.5f;
  s.pattern = Pattern::kNM;
  s.n = 5;
  s.m = 4;
  EXPECT_THROW(validate_spec(s), std::invalid_argument);
}

TEST(Prune, ZeroSparsityKeepsEverything) {
  Rng rng(1);
  const Tensor w = randn({8, 8}, rng);
  PruneSpec s;
  s.sparsity = 0.0f;
  const Tensor mask = magnitude_mask(w, s);
  EXPECT_FLOAT_EQ(measured_sparsity(mask), 0.0f);
}

// Property: unstructured masks hit the requested sparsity exactly (floor).
class UnstructuredSparsity : public ::testing::TestWithParam<float> {};

TEST_P(UnstructuredSparsity, ExactCount) {
  Rng rng(2);
  const Tensor w = randn({10, 10}, rng);
  PruneSpec s;
  s.sparsity = GetParam();
  const Tensor mask = magnitude_mask(w, s);
  // The implementation floors floor(double(sparsity) * numel).
  const float expected =
      static_cast<float>(std::floor(static_cast<double>(GetParam()) * 100.0)) / 100.0f;
  EXPECT_FLOAT_EQ(measured_sparsity(mask), expected);
}

INSTANTIATE_TEST_SUITE_P(Ratios, UnstructuredSparsity,
                         ::testing::Values(0.1f, 0.25f, 0.333f, 0.5f, 0.7f, 0.9f));

TEST(Prune, MagnitudeOrderRespected) {
  Tensor w({1, 6}, std::vector<float>{0.1f, -5.0f, 0.2f, 3.0f, -0.05f, 1.0f});
  PruneSpec s;
  s.sparsity = 0.5f;  // drop 3 smallest |w|: 0.05, 0.1, 0.2
  const Tensor mask = magnitude_mask(w, s);
  EXPECT_FLOAT_EQ(mask[0], 0.0f);
  EXPECT_FLOAT_EQ(mask[1], 1.0f);
  EXPECT_FLOAT_EQ(mask[2], 0.0f);
  EXPECT_FLOAT_EQ(mask[3], 1.0f);
  EXPECT_FLOAT_EQ(mask[4], 0.0f);
  EXPECT_FLOAT_EQ(mask[5], 1.0f);
}

TEST(Prune, RowPatternRemovesWholeRows) {
  Rng rng(3);
  Tensor w = randn({8, 4}, rng);
  // Make rows 2 and 5 tiny so they are pruned first.
  for (int c = 0; c < 4; ++c) {
    w.at(2, c) = 1e-4f;
    w.at(5, c) = -1e-4f;
  }
  PruneSpec s;
  s.sparsity = 0.25f;
  s.pattern = Pattern::kRow;
  const Tensor mask = magnitude_mask(w, s);
  for (int c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(mask.at(2, c), 0.0f);
    EXPECT_FLOAT_EQ(mask.at(5, c), 0.0f);
  }
  EXPECT_FLOAT_EQ(measured_sparsity(mask), 0.25f);
}

TEST(Prune, ColumnPatternRemovesWholeColumns) {
  Rng rng(4);
  Tensor w = randn({4, 8}, rng);
  for (int r = 0; r < 4; ++r) w.at(r, 6) = 1e-5f;
  PruneSpec s;
  s.sparsity = 0.125f;
  s.pattern = Pattern::kColumn;
  const Tensor mask = magnitude_mask(w, s);
  for (int r = 0; r < 4; ++r) EXPECT_FLOAT_EQ(mask.at(r, 6), 0.0f);
}

// Property: N:M masks keep exactly n of every m elements.
class NmPattern : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(NmPattern, KeepsNPerGroup) {
  const auto [n, m] = GetParam();
  Rng rng(5);
  const Tensor w = randn({4, 16}, rng);
  PruneSpec s;
  s.pattern = Pattern::kNM;
  s.n = n;
  s.m = m;
  const Tensor mask = magnitude_mask(w, s);
  for (int64_t start = 0; start + m <= w.numel(); start += m) {
    int kept = 0;
    for (int i = 0; i < m; ++i) kept += mask[start + i] != 0.0f ? 1 : 0;
    EXPECT_EQ(kept, n);
  }
  EXPECT_NEAR(s.effective_sparsity(), 1.0f - static_cast<float>(n) / m, 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Patterns, NmPattern,
                         ::testing::Values(std::make_pair(2, 4), std::make_pair(1, 4),
                                           std::make_pair(4, 8), std::make_pair(1, 2)));

TEST(Prune, NmKeepsLargestMagnitudes) {
  Tensor w({1, 4}, std::vector<float>{0.1f, -9.0f, 4.0f, 0.2f});
  PruneSpec s;
  s.pattern = Pattern::kNM;
  s.n = 2;
  s.m = 4;
  const Tensor mask = magnitude_mask(w, s);
  EXPECT_FLOAT_EQ(mask[0], 0.0f);
  EXPECT_FLOAT_EQ(mask[1], 1.0f);
  EXPECT_FLOAT_EQ(mask[2], 1.0f);
  EXPECT_FLOAT_EQ(mask[3], 0.0f);
}

TEST(Prune, ApplyMaskZeroesWeights) {
  Rng rng(6);
  const Tensor w = randn({6, 6}, rng);
  PruneSpec s;
  s.sparsity = 0.5f;
  const Tensor mask = magnitude_mask(w, s);
  const Tensor pruned = apply_mask(w, mask);
  for (int64_t i = 0; i < w.numel(); ++i) {
    if (mask[i] == 0.0f) {
      EXPECT_FLOAT_EQ(pruned[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(pruned[i], w[i]);
    }
  }
  EXPECT_THROW(apply_mask(w, Tensor({2, 2})), std::invalid_argument);
}

TEST(Prune, SparseStorageBytes) {
  Tensor mask({4, 4}, 1.0f);
  mask[0] = mask[5] = 0.0f;  // 14 kept
  EXPECT_DOUBLE_EQ(sparse_storage_bytes(mask, 4), 14.0 * (0.5 + 1.0));
  EXPECT_DOUBLE_EQ(sparse_storage_bytes(mask, 16), 14.0 * 3.0);
  EXPECT_THROW(sparse_storage_bytes(mask, 1), std::invalid_argument);
}

TEST(Prune, RowPatternRejects1d) {
  PruneSpec s;
  s.sparsity = 0.5f;
  s.pattern = Pattern::kRow;
  EXPECT_THROW(magnitude_mask(Tensor({8}, 1.0f), s), std::invalid_argument);
}

}  // namespace
}  // namespace edgellm::prune
