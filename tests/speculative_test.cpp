// Self-speculative decoding: an early-exit head drafts tokens that one
// stacked full-depth pass verifies, with rejected rows rewound out of the
// KV cache (KvSequenceView::truncate). The load-bearing contract, pinned
// differentially throughout: speculative greedy output is BYTE-IDENTICAL
// to non-speculative full-depth greedy decode — across both KV pools, any
// thread count, fp32 and int8 KV, any draft depth and verify width.
// Alongside: adversarial truncate tests for both cache backings (mid-block,
// block boundary, across a COW fork, after a prefix-trie hit) and the
// engine-level regression that speculative requests reserve KV at the
// verified-length bound, not prompt + max_new + draft_k.
#include <gtest/gtest.h>

#include <cstring>
#include <future>

#include "serve/engine.hpp"
#include "test_util.hpp"

namespace edgellm::serve {
namespace {

using edgellm::testing::engine_cfg;
using edgellm::testing::feed_positions;
using edgellm::testing::fill_row;
using edgellm::testing::greedy_request;
using edgellm::testing::iota_tokens;
using edgellm::testing::paged_cfg;
using edgellm::testing::paged_engine_cfg;
using edgellm::testing::reference_greedy;
using edgellm::testing::seq_tokens;
using edgellm::testing::serve_batch;
using edgellm::testing::tiny_config;

int64_t argmax_of(const Tensor& t) {
  int64_t best = 0;
  for (int64_t i = 1; i < t.numel(); ++i) {
    if (t.raw()[i] > t.raw()[best]) best = i;
  }
  return best;
}

Request spec_request(int64_t id, std::vector<int64_t> prompt, int64_t n_new, int64_t depth,
                     int64_t k) {
  Request r = greedy_request(id, std::move(prompt), n_new, ExitPolicy::kSpeculative);
  r.draft_depth = depth;
  r.draft_k = k;
  return r;
}

/// Greedy reference with a quantized KV cache (the shared reference_greedy
/// is fp32-only).
std::vector<int64_t> reference_greedy_kv(nn::CausalLm& model, const std::vector<int64_t>& prompt,
                                         int64_t n_new, bool quantize_kv) {
  nn::IncrementalDecoder dec(model, /*exit_layer=*/0, quantize_kv);
  nn::GenerateConfig g;
  g.max_new_tokens = n_new;
  g.temperature = 0.0f;
  Rng rng(0);
  return dec.generate(prompt, g, rng);
}

// --- KvCache::truncate (contiguous) -----------------------------------------

TEST(KvTruncate, ContiguousDropsTailBitExactFp32AndInt8) {
  for (const bool quantize : {false, true}) {
    nn::KvCache a(2, 8, quantize);
    nn::KvCache b(2, 8, quantize);
    feed_positions(a, 10, 2);
    feed_positions(b, 6, 2);
    a.truncate(6);
    EXPECT_EQ(a.positions(0), 6);
    EXPECT_EQ(a.positions(1), 6);
    EXPECT_EQ(a.bytes(), b.bytes()) << "quantize=" << quantize;
    std::vector<float> ra(8), rb(8);
    for (int64_t l = 0; l < 2; ++l) {
      for (int64_t p = 0; p < 6; ++p) {
        a.load_k(l, p, ra.data());
        b.load_k(l, p, rb.data());
        EXPECT_EQ(std::memcmp(ra.data(), rb.data(), 8 * sizeof(float)), 0) << l << "/" << p;
        a.load_v(l, p, ra.data());
        b.load_v(l, p, rb.data());
        EXPECT_EQ(std::memcmp(ra.data(), rb.data(), 8 * sizeof(float)), 0) << l << "/" << p;
      }
    }
    // Appends after the rewind land at position 6 and stay bit-identical to
    // a cache that never speculated.
    feed_positions(a, 2, 2, /*salt=*/9);
    feed_positions(b, 2, 2, /*salt=*/9);
    for (int64_t p = 6; p < 8; ++p) {
      a.load_k(0, p, ra.data());
      b.load_k(0, p, rb.data());
      EXPECT_EQ(std::memcmp(ra.data(), rb.data(), 8 * sizeof(float)), 0) << p;
    }
    a.truncate(100);  // beyond the tail: no-op
    EXPECT_EQ(a.positions(0), 8);
    a.truncate(0);
    EXPECT_EQ(a.positions(0), 0);
    EXPECT_EQ(a.bytes(), 0);
    EXPECT_THROW(a.truncate(-1), std::invalid_argument);
  }
}

// --- PagedKvSeq::truncate (paged, adversarial) ------------------------------

TEST(PagedTruncate, MidBlockAndBlockBoundaryConserveBlocksAndBytes) {
  obs::Registry reg;
  PagedKvPool pool(paged_cfg(4, 2, 8, /*budget=*/0, &reg));
  auto r = pool.acquire(iota_tokens(10), /*projected=*/12, /*n_layers=*/2);
  ASSERT_NE(r.seq, nullptr);
  feed_positions(*r.seq, 10, 2);
  ASSERT_EQ(pool.allocated_blocks(), 6);  // ceil(10/4)=3 blocks x 2 layers
  EXPECT_EQ(reg.gauge("kv/blocks_in_use").value(), 6);

  // Mid-block rewind: 10 -> 6 keeps ceil(6/4)=2 blocks per layer and frees
  // the rest back to the pool.
  r.seq->truncate(6);
  EXPECT_EQ(r.seq->positions(0), 6);
  EXPECT_EQ(r.seq->positions(1), 6);
  EXPECT_EQ(pool.allocated_blocks(), 4);
  EXPECT_EQ(pool.free_blocks(), 2);
  EXPECT_EQ(pool.total_blocks(), 6);  // conservation: allocated + free
  EXPECT_EQ(reg.gauge("kv/blocks_in_use").value(), 4);
  EXPECT_EQ(r.seq->bytes(), 4 * pool.block_bytes());

  // Surviving rows are bit-identical to a contiguous cache fed identically.
  nn::KvCache ref(2, 8, false);
  feed_positions(ref, 6, 2);
  std::vector<float> got(8), want(8);
  for (int64_t l = 0; l < 2; ++l) {
    for (int64_t p = 0; p < 6; ++p) {
      r.seq->load_k(l, p, got.data());
      ref.load_k(l, p, want.data());
      EXPECT_EQ(std::memcmp(got.data(), want.data(), 8 * sizeof(float)), 0) << l << "/" << p;
    }
  }

  // The partially-filled tail block accepts appends again without a fresh
  // allocation (positions 6 and 7 refill block 1).
  feed_positions(*r.seq, 2, 2, /*salt=*/9);
  EXPECT_EQ(r.seq->positions(0), 8);
  EXPECT_EQ(pool.allocated_blocks(), 4);

  // Exact block-boundary rewinds: 8 -> 8 is a no-op; 8 -> 4 frees exactly
  // one block per layer.
  r.seq->truncate(8);
  EXPECT_EQ(r.seq->positions(0), 8);
  EXPECT_EQ(pool.allocated_blocks(), 4);
  r.seq->truncate(4);
  EXPECT_EQ(r.seq->positions(0), 4);
  EXPECT_EQ(pool.allocated_blocks(), 2);
  EXPECT_EQ(pool.free_blocks(), 4);
  EXPECT_EQ(pool.total_blocks(), 6);

  // Release conserves the byte accounting (reservation was never touched by
  // the truncates) and donates the surviving full blocks.
  pool.release(r.seq, iota_tokens(4), /*reuse=*/true);
  EXPECT_EQ(pool.committed_bytes(), 0);
  EXPECT_EQ(pool.seqs_in_use(), 0);
  EXPECT_EQ(pool.cached_blocks(), 2);
  EXPECT_EQ(pool.total_blocks(), 6);
  EXPECT_EQ(pool.allocated_blocks() + pool.free_blocks(), pool.total_blocks());
}

TEST(PagedTruncate, AcrossCowForkPointNeverScribblesOnTrieBlocks) {
  obs::Registry reg;
  PagedKvPool pool(paged_cfg(4, 1, 8, /*budget=*/0, &reg));
  // Seed the prefix trie: 8 positions -> 2 full donated blocks.
  auto a = pool.acquire(iota_tokens(8), 8, 1);
  ASSERT_NE(a.seq, nullptr);
  feed_positions(*a.seq, 8, 1, /*salt=*/0);
  pool.release(a.seq, iota_tokens(8), /*reuse=*/true);
  ASSERT_EQ(pool.cached_blocks(), 2);

  // B rides the cached prefix (shared blocks 0 and 1), then extends.
  auto b = pool.acquire(iota_tokens(12), 12, 1);
  ASSERT_NE(b.seq, nullptr);
  ASSERT_EQ(b.prefix_tokens, 8);
  ASSERT_EQ(b.seq->shared_len(), 8);
  feed_positions(*b.seq, 4, 1, /*salt=*/0);  // positions 8..11, owned block 2
  ASSERT_EQ(pool.allocated_blocks(), 3);

  // Truncate BELOW the shared prefix, across what will become a fork point:
  // the owned tail block is recycled, the shared column is dropped from the
  // table (the trie still owns it — cached count unchanged), and the pool
  // must remember that block 0 is still shared.
  b.seq->truncate(3);
  EXPECT_EQ(b.seq->positions(0), 3);
  EXPECT_EQ(pool.allocated_blocks(), 2);  // both cached; owned tail freed
  EXPECT_EQ(pool.cached_blocks(), 2);
  EXPECT_EQ(pool.free_blocks(), 1);

  // Re-appending inside the shared region must COW-fork, not write in place
  // into the trie's block.
  feed_positions(*b.seq, 5, 1, /*salt=*/99);  // positions 3..7
  EXPECT_EQ(b.seq->cow_forks(), 1);
  EXPECT_EQ(pool.cached_blocks(), 2);  // trie population untouched
  pool.release(b.seq, {}, /*reuse=*/false);
  EXPECT_EQ(pool.committed_bytes(), 0);
  EXPECT_EQ(pool.allocated_blocks(), 2);  // only the trie's blocks remain live
  EXPECT_EQ(pool.allocated_blocks() + pool.free_blocks(), pool.total_blocks());

  // The cached prefix still serves the ORIGINAL rows: a new reader's prefix
  // hit must see salt-0 content, not B's post-truncate salt-99 rows.
  auto c = pool.acquire(iota_tokens(8), 8, 1);
  ASSERT_NE(c.seq, nullptr);
  ASSERT_GT(c.prefix_tokens, 0);
  nn::KvCache ref(1, 8, false);
  feed_positions(ref, 8, 1, /*salt=*/0);
  std::vector<float> got(8), want(8);
  for (int64_t p = 0; p < c.prefix_tokens; ++p) {
    c.seq->load_k(0, p, got.data());
    ref.load_k(0, p, want.data());
    EXPECT_EQ(std::memcmp(got.data(), want.data(), 8 * sizeof(float)), 0) << p;
    c.seq->load_v(0, p, got.data());
    ref.load_v(0, p, want.data());
    EXPECT_EQ(std::memcmp(got.data(), want.data(), 8 * sizeof(float)), 0) << p;
  }
  pool.release(c.seq, {}, /*reuse=*/false);
  EXPECT_EQ(pool.committed_bytes(), 0);
}

TEST(PagedTruncate, AfterPrefixTrieHitKeepsPinsAndRefcountsConserved) {
  obs::Registry reg;
  PagedKvPool pool(paged_cfg(4, 2, 8, /*budget=*/0, &reg));
  auto a = pool.acquire(iota_tokens(8), 8, 2);
  feed_positions(*a.seq, 8, 2);
  pool.release(a.seq, iota_tokens(8), /*reuse=*/true);
  ASSERT_EQ(pool.cached_blocks(), 4);  // 2 blocks x 2 layers

  // Fresh hit, then an immediate rewind below the shared length — before
  // any append. Shared columns drop out of the table but the trie's blocks
  // (and this sequence's pins on them) are untouched.
  auto b = pool.acquire(iota_tokens(12), 12, 2);
  ASSERT_EQ(b.prefix_tokens, 8);
  b.seq->truncate(2);
  EXPECT_EQ(b.seq->positions(0), 2);
  EXPECT_EQ(b.seq->positions(1), 2);
  EXPECT_EQ(pool.cached_blocks(), 4);
  EXPECT_EQ(pool.allocated_blocks(), 4);
  // Pinned prefix blocks still count against committed bytes until release.
  EXPECT_GT(pool.committed_bytes(), 0);

  // Release unpins cleanly even though the table no longer references the
  // shared columns: refcounts came from the pin list, not the table.
  pool.release(b.seq, {}, /*reuse=*/false);
  EXPECT_EQ(pool.committed_bytes(), 0);
  EXPECT_EQ(pool.seqs_in_use(), 0);
  EXPECT_EQ(pool.cached_blocks(), 4);
  EXPECT_EQ(pool.allocated_blocks() + pool.free_blocks(), pool.total_blocks());

  // The trie is still fully usable: another full-prefix hit succeeds.
  auto c = pool.acquire(iota_tokens(12), 12, 2);
  EXPECT_EQ(c.prefix_tokens, 8);
  pool.release(c.seq, {}, /*reuse=*/false);
  EXPECT_EQ(reg.counter("kv/acquired").value(), reg.counter("kv/released").value());
}

// --- nn::speculative_decode_step --------------------------------------------

TEST(SpeculativeDecode, MatchesSequentialGreedyAtEveryDepthAndK) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(40);
  nn::CausalLm model(cfg, rng);
  model.set_eval();
  for (const bool quantize : {false, true}) {
    for (const int64_t depth : {1, 2}) {
      for (const int64_t k : {1, 2, 4, 8}) {
        const auto prompt = seq_tokens(5, cfg.vocab, depth * 10 + k);
        const int64_t n_new = 8;
        const auto want = reference_greedy_kv(model, prompt, n_new, quantize);

        nn::KvCache cache(cfg.n_layers, cfg.kv_dim(), quantize);
        Tensor logits;
        for (size_t i = 0; i < prompt.size(); ++i) {
          logits = nn::decode_step(model, cache, static_cast<int64_t>(i), prompt[i], 0);
        }
        std::vector<int64_t> out;
        out.push_back(argmax_of(logits));
        while (static_cast<int64_t>(out.size()) < n_new) {
          const int64_t position =
              static_cast<int64_t>(prompt.size()) + static_cast<int64_t>(out.size()) - 1;
          const int64_t k_eff = std::min<int64_t>(
              {k, n_new - static_cast<int64_t>(out.size()), cfg.max_seq - position});
          ASSERT_GE(k_eff, 1);
          const nn::SpeculativeResult r =
              nn::speculative_decode_step(model, cache, position, out.back(), depth, k_eff);
          ASSERT_FALSE(r.nonfinite);
          ASSERT_GE(static_cast<int64_t>(r.tokens.size()), 1);
          ASSERT_LE(static_cast<int64_t>(r.tokens.size()), k_eff);
          EXPECT_EQ(r.drafted, k_eff - 1);
          EXPECT_LE(r.accepted_drafts, r.drafted);
          EXPECT_EQ(static_cast<int64_t>(r.tokens.size()), r.accepted_drafts + 1);
          out.insert(out.end(), r.tokens.begin(), r.tokens.end());
          // Post-state contract: the last emitted token is not yet fed.
          EXPECT_EQ(cache.positions(0), position + static_cast<int64_t>(r.tokens.size()));
        }
        EXPECT_EQ(out, want) << "quantize=" << quantize << " depth=" << depth << " k=" << k;
      }
    }
  }
}

TEST(SpeculativeDecode, ValidatesArguments) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(7);
  nn::CausalLm model(cfg, rng);
  model.set_eval();
  nn::KvCache cache(cfg.n_layers, cfg.kv_dim(), false);
  EXPECT_THROW(nn::speculative_decode_step(model, cache, 0, 1, /*draft_depth=*/1, /*k=*/0),
               std::invalid_argument);
  EXPECT_THROW(nn::speculative_decode_step(model, cache, 0, 1, /*draft_depth=*/5, 2),
               std::invalid_argument);  // unregistered exit
  EXPECT_THROW(nn::speculative_decode_step(model, cache, 1, 1, 1, 2),
               std::invalid_argument);  // position != cached rows
  EXPECT_THROW(nn::speculative_decode_step(model, cache, 0, 1, 1, cfg.max_seq + 1),
               std::invalid_argument);  // would overrun the context window
}

// --- engine end to end: the differential sweep ------------------------------

TEST(SpeculativeEngine, GreedyByteIdenticalAcrossPoolsThreadsKvAndKnobs) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(40);
  nn::CausalLm model(cfg, rng);

  // Sweep cells: draft depth {shallow, deep} x k {1, 4, 8}, plus a prompt
  // shorter than k and max_tokens hit mid-draft.
  struct Cell {
    std::vector<int64_t> prompt;
    int64_t n_new;
    int64_t depth;
    int64_t k;
  };
  std::vector<Cell> cells;
  int64_t salt = 0;
  for (const int64_t depth : {1, 2}) {
    for (const int64_t k : {1, 4, 8}) {
      cells.push_back({seq_tokens(4 + salt % 3, cfg.vocab, salt), 6, depth, k});
      ++salt;
    }
  }
  cells.push_back({seq_tokens(2, cfg.vocab, 17), 8, 2, 8});  // prompt shorter than k
  cells.push_back({seq_tokens(5, cfg.vocab, 23), 3, 1, 8});  // max_tokens mid-draft

  for (const bool paged : {false, true}) {
    for (const int64_t threads : {1, 2, 8}) {
      for (const bool quantize : {false, true}) {
        EngineConfig ecfg = paged ? paged_engine_cfg(threads, /*block_tokens=*/5)
                                  : engine_cfg(threads);
        ecfg.quantize_kv = quantize;
        ServeEngine engine(model, ecfg);
        // One speculative and one plain full-depth request per cell, same
        // prompt: the pair must produce byte-identical token streams.
        std::vector<Request> reqs;
        for (size_t c = 0; c < cells.size(); ++c) {
          reqs.push_back(spec_request(static_cast<int64_t>(2 * c), cells[c].prompt,
                                      cells[c].n_new, cells[c].depth, cells[c].k));
          reqs.push_back(greedy_request(static_cast<int64_t>(2 * c + 1), cells[c].prompt,
                                        cells[c].n_new));
        }
        const auto done = serve_batch(engine, std::move(reqs));
        for (size_t c = 0; c < cells.size(); ++c) {
          const Completion& spec = done[2 * c];
          const Completion& full = done[2 * c + 1];
          ASSERT_EQ(spec.status, RequestStatus::kOk)
              << "paged=" << paged << " threads=" << threads << " quantize=" << quantize
              << " cell=" << c << " err=" << spec.error;
          ASSERT_EQ(full.status, RequestStatus::kOk);
          EXPECT_EQ(spec.tokens, full.tokens)
              << "paged=" << paged << " threads=" << threads << " quantize=" << quantize
              << " depth=" << cells[c].depth << " k=" << cells[c].k;
          if (!quantize) {
            EXPECT_EQ(spec.tokens, reference_greedy(model, cells[c].prompt, cells[c].n_new));
          }
          EXPECT_EQ(spec.metrics.output_tokens, cells[c].n_new);
          if (cells[c].k > 1) {
            EXPECT_GT(spec.metrics.spec_drafted, 0);
          }
          EXPECT_GE(spec.metrics.spec_drafted, spec.metrics.spec_accepted);
          EXPECT_EQ(full.metrics.spec_drafted, 0);
        }
        const EngineMetrics m = engine.metrics();
        EXPECT_EQ(m.submitted, m.completed);  // conservation: nothing lost
      }
    }
  }
}

TEST(SpeculativeEngine, SubmitValidatesSpeculativeRequests) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(4);
  nn::CausalLm model(cfg, rng);
  ServeEngine engine(model, engine_cfg(1));
  // Greedy-only determinism contract.
  Request sampled = spec_request(1, seq_tokens(4, cfg.vocab), 4, 2, 4);
  sampled.temperature = 0.5f;
  EXPECT_THROW(engine.submit(std::move(sampled)), std::invalid_argument);
  // Draft depth must be a registered exit strictly below the final layer.
  EXPECT_THROW(engine.submit(spec_request(2, seq_tokens(4, cfg.vocab), 4, cfg.n_layers, 4)),
               std::invalid_argument);
  EXPECT_THROW(engine.submit(spec_request(3, seq_tokens(4, cfg.vocab), 4, 5, 4)),
               std::invalid_argument);
  EXPECT_THROW(engine.submit(spec_request(4, seq_tokens(4, cfg.vocab), 4, -1, 4)),
               std::invalid_argument);
  EXPECT_THROW(engine.submit(spec_request(5, seq_tokens(4, cfg.vocab), 4, 2, -1)),
               std::invalid_argument);
  // Defaults resolve: depth 0 -> deepest registered early exit, k 0 -> the
  // engine default; the request decodes byte-identically to full depth.
  auto fut = engine.submit(spec_request(6, seq_tokens(4, cfg.vocab), 5, 0, 0));
  const Completion c = fut.get();
  ASSERT_EQ(c.status, RequestStatus::kOk);
  EXPECT_EQ(c.tokens, reference_greedy(model, seq_tokens(4, cfg.vocab), 5));
}

TEST(SpeculativeEngine, RequiresARegisteredEarlyExit) {
  nn::ModelConfig cfg = tiny_config();
  cfg.exit_layers = {cfg.n_layers};  // final exit only: nothing to draft from
  Rng rng(4);
  nn::CausalLm model(cfg, rng);
  ServeEngine engine(model, engine_cfg(1));
  EXPECT_THROW(engine.submit(spec_request(1, seq_tokens(4, cfg.vocab), 4, 0, 4)),
               std::invalid_argument);
}

// Satellite regression: speculative requests must reserve KV at the
// verified-length bound min(prompt + max_new, max_seq) — NOT at
// prompt + max_new + draft_k. A budget sized exactly for the verified
// bound admits the request; a draft-inflated projection would reject it.
TEST(SpeculativeEngine, ProjectionAdmitsRequestThatOnlyFitsAtVerifiedBound) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(40);
  nn::CausalLm model(cfg, rng);
  const auto prompt = seq_tokens(4, cfg.vocab);
  const int64_t n_new = 6;
  const int64_t projected = static_cast<int64_t>(prompt.size()) + n_new;  // 10 < max_seq
  ASSERT_LT(projected, cfg.max_seq);
  const int64_t bpp = nn::KvCache::bytes_per_position(cfg.n_layers, cfg.kv_dim(), false);

  for (const bool paged : {false, true}) {
    EngineConfig ecfg = paged ? paged_engine_cfg(1, /*block_tokens=*/1) : engine_cfg(1);
    // Exactly the verified bound. With draft_k = 8, a projection of
    // prompt + max_new + k (14 positions, 16 clamped to max_seq) would
    // exceed this budget and reject the request outright.
    ecfg.kv_byte_budget = projected * bpp;
    ServeEngine engine(model, ecfg);
    auto fut = engine.submit(spec_request(1, prompt, n_new, 2, /*k=*/8));
    const Completion c = fut.get();
    ASSERT_EQ(c.status, RequestStatus::kOk) << "paged=" << paged << " err=" << c.error;
    EXPECT_EQ(c.tokens, reference_greedy(model, prompt, n_new)) << "paged=" << paged;
    EXPECT_GT(c.metrics.spec_drafted, 0);
  }
}

TEST(SpeculativeEngine, MetricsCountersAndHistogramsExported) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(40);
  nn::CausalLm model(cfg, rng);
  ServeEngine engine(model, engine_cfg(1));
  const Completion c = engine.submit(spec_request(1, seq_tokens(4, cfg.vocab), 8, 2, 4)).get();
  ASSERT_EQ(c.status, RequestStatus::kOk);
  ASSERT_GT(c.metrics.spec_drafted, 0);
  EXPECT_GE(c.metrics.spec_drafted, c.metrics.spec_accepted);

  const obs::MetricsSnapshot snap = engine.registry().snapshot();
  // Per-engine counters reconcile exactly with the per-request metrics
  // (this engine served exactly one request).
  EXPECT_EQ(snap.counter("spec/accepted_tokens"), c.metrics.spec_accepted);
  EXPECT_EQ(snap.counter("spec/accepted_tokens") + snap.counter("spec/rejected_tokens"),
            c.metrics.spec_drafted);
  const obs::HistogramSnapshot* rounds = snap.histogram("spec/accepted_per_round");
  ASSERT_NE(rounds, nullptr);
  EXPECT_GT(rounds->count, 0);
  const obs::HistogramSnapshot* rate = snap.histogram("spec/acceptance_rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_GT(rate->count, 0);
  // Rate samples live in [0, 1]: nothing may land in the overflow bucket.
  EXPECT_EQ(rate->counts.back(), 0);
}

// --- wire format ------------------------------------------------------------

TEST(SpeculativeRequestJson, ParsesPolicyAndKnobs) {
  const Request r = parse_request_json(
      "{\"id\": 9, \"prompt\": [1,2,3], \"exit\": \"speculative\", "
      "\"draft_depth\": 2, \"draft_k\": 4}");
  EXPECT_EQ(r.id, 9);
  EXPECT_EQ(r.exit_policy, ExitPolicy::kSpeculative);
  EXPECT_EQ(r.draft_depth, 2);
  EXPECT_EQ(r.draft_k, 4);
  EXPECT_STREQ(to_string(ExitPolicy::kSpeculative), "speculative");
  EXPECT_THROW(parse_request_json("{\"prompt\": [1], \"draft_depth\": -1}"),
               std::invalid_argument);
  EXPECT_THROW(parse_request_json("{\"prompt\": [1], \"draft_k\": -2}"),
               std::invalid_argument);
  // The unknown-string error must advertise the new policy.
  try {
    parse_request_json("{\"prompt\": [1], \"exit\": \"bogus\"}");
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("speculative"), std::string::npos);
  }
}

TEST(SpeculativeRequestJson, CompletionCarriesSpecMetrics) {
  Completion c;
  c.id = 3;
  c.tokens = {1, 2};
  c.metrics.spec_drafted = 10;
  c.metrics.spec_accepted = 7;
  const std::string line = completion_to_json(c);
  EXPECT_NE(line.find("\"spec_drafted\": 10"), std::string::npos) << line;
  EXPECT_NE(line.find("\"spec_accepted\": 7"), std::string::npos) << line;
  // Non-speculative completions stay wire-compatible: no spec fields.
  Completion plain;
  plain.id = 4;
  EXPECT_EQ(completion_to_json(plain).find("spec_drafted"), std::string::npos);
}

}  // namespace
}  // namespace edgellm::serve
