// Finite-difference validation of every hand-written backward pass.
#include <gtest/gtest.h>

#include "nn/attention.hpp"
#include "nn/block.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/model.hpp"
#include "nn/norm.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace edgellm::nn {
namespace {

using edgellm::testing::check_param_grad;
using edgellm::testing::tiny_config;

// Scalar loss used for all module-level checks: weighted sum of outputs.
float weighted_sum(const Tensor& y, const Tensor& w) {
  float l = 0.0f;
  for (int64_t i = 0; i < y.numel(); ++i) l += y[i] * w[i];
  return l;
}

TEST(GradCheck, LinearWeightBiasAndInput) {
  Rng rng(1);
  Linear lin("lin", 5, 4, /*bias=*/true, rng);
  Tensor x = randn({3, 5}, rng);
  const Tensor w = randn({3, 4}, rng);

  auto loss_fn = [&] {
    lin.clear_cache();
    return weighted_sum(lin.forward(x), w);
  };
  loss_fn();
  const Tensor gx = lin.backward(w);

  check_param_grad(lin.weight(), loss_fn);
  check_param_grad(lin.bias(), loss_fn);

  // Input gradient by finite differences.
  const float h = 1e-3f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + h;
    const float lp = loss_fn();
    x[i] = orig - h;
    const float lm = loss_fn();
    x[i] = orig;
    EXPECT_NEAR(gx[i], (lp - lm) / (2 * h), 2e-2f) << "input idx " << i;
  }
}

TEST(GradCheck, LinearWithPruneMaskKeepsPrunedWeightsFixed) {
  Rng rng(2);
  Linear lin("lin", 6, 6, /*bias=*/false, rng);
  prune::PruneSpec p;
  p.sparsity = 0.5f;
  lin.set_prune(p);
  const Tensor mask = *lin.prune_mask();

  Tensor x = randn({4, 6}, rng);
  const Tensor w = randn({4, 6}, rng);
  (void)lin.forward(x);
  (void)lin.backward(w);
  for (int64_t i = 0; i < mask.numel(); ++i) {
    if (mask[i] == 0.0f) {
      EXPECT_FLOAT_EQ(lin.weight().grad[i], 0.0f);
    }
  }
}

TEST(GradCheck, LinearWithQuantUsesSte) {
  // The straight-through estimator is *defined* to ignore the quantizer in
  // the weight-gradient path: dW must equal the uncompressed layer's dW,
  // while dX must be computed through the quantized weight.
  Rng rng(3);
  Linear lin("lin", 4, 4, /*bias=*/false, rng);
  Linear ref("ref", 4, 4, /*bias=*/false, rng);
  ref.weight().value = lin.weight().value;

  quant::QuantSpec q;
  q.bits = 4;
  lin.set_quant(q);

  Tensor x = randn({2, 4}, rng);
  const Tensor go = randn({2, 4}, rng);
  (void)lin.forward(x);
  (void)ref.forward(x);
  const Tensor gx_q = lin.backward(go);
  (void)ref.backward(go);

  // (a) STE: weight grads identical to the fp layer.
  EXPECT_TRUE(lin.weight().grad.allclose(ref.weight().grad, 1e-6f));

  // (b) dX flows through the quantized weight: g * W_q.
  const Tensor expected_gx = ops::matmul(go, lin.effective_weight());
  EXPECT_TRUE(gx_q.allclose(expected_gx, 1e-6f));
}

TEST(GradCheck, LinearLoraParams) {
  Rng rng(4);
  Linear lin("lin", 6, 5, /*bias=*/false, rng);
  lin.enable_lora(2, 4.0f, rng);
  // Give B nonzero values so A receives gradient signal.
  for (int64_t i = 0; i < lin.lora_b().value.numel(); ++i) {
    lin.lora_b().value[i] = rng.normal(0.0f, 0.1f);
  }
  Tensor x = randn({3, 6}, rng);
  const Tensor w = randn({3, 5}, rng);
  auto loss_fn = [&] {
    lin.clear_cache();
    return weighted_sum(lin.forward(x), w);
  };
  loss_fn();
  (void)lin.backward(w);
  check_param_grad(lin.lora_a(), loss_fn);
  check_param_grad(lin.lora_b(), loss_fn);
  check_param_grad(lin.weight(), loss_fn);
}

TEST(GradCheck, RmsNorm) {
  Rng rng(5);
  RmsNorm norm("n", 6);
  for (int64_t i = 0; i < 6; ++i) norm.gain().value[i] = rng.normal(1.0f, 0.2f);
  Tensor x = randn({4, 6}, rng);
  const Tensor w = randn({4, 6}, rng);
  auto loss_fn = [&] {
    norm.clear_cache();
    return weighted_sum(norm.forward(x), w);
  };
  loss_fn();
  const Tensor gx = norm.backward(w);
  check_param_grad(norm.gain(), loss_fn);

  const float h = 1e-3f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + h;
    const float lp = loss_fn();
    x[i] = orig - h;
    const float lm = loss_fn();
    x[i] = orig;
    EXPECT_NEAR(gx[i], (lp - lm) / (2 * h), 2e-2f) << "input idx " << i;
  }
}

TEST(GradCheck, MlpParamsAndInput) {
  Rng rng(6);
  Mlp mlp("mlp", 4, 8, rng);
  Tensor x = randn({3, 4}, rng);
  const Tensor w = randn({3, 4}, rng);
  auto loss_fn = [&] {
    mlp.clear_cache();
    return weighted_sum(mlp.forward(x), w);
  };
  loss_fn();
  const Tensor gx = mlp.backward(w);
  check_param_grad(mlp.fc1().weight(), loss_fn);
  check_param_grad(mlp.fc2().weight(), loss_fn);
  check_param_grad(mlp.fc1().bias(), loss_fn);

  const float h = 1e-3f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + h;
    const float lp = loss_fn();
    x[i] = orig - h;
    const float lm = loss_fn();
    x[i] = orig;
    EXPECT_NEAR(gx[i], (lp - lm) / (2 * h), 2e-2f);
  }
}

TEST(GradCheck, AttentionParamsAndInput) {
  Rng rng(7);
  MultiHeadAttention attn("attn", 8, 2, rng);
  Tensor x = randn({2, 3, 8}, rng);
  const Tensor w = randn({2, 3, 8}, rng);
  auto loss_fn = [&] {
    attn.clear_cache();
    return weighted_sum(attn.forward(x), w);
  };
  loss_fn();
  const Tensor gx = attn.backward(w);
  check_param_grad(attn.q_proj().weight(), loss_fn, 8);
  check_param_grad(attn.k_proj().weight(), loss_fn, 8);
  check_param_grad(attn.v_proj().weight(), loss_fn, 8);
  check_param_grad(attn.out_proj().weight(), loss_fn, 8);

  const float h = 1e-3f;
  for (int64_t i = 0; i < x.numel(); i += 5) {
    const float orig = x[i];
    x[i] = orig + h;
    const float lp = loss_fn();
    x[i] = orig - h;
    const float lm = loss_fn();
    x[i] = orig;
    EXPECT_NEAR(gx[i], (lp - lm) / (2 * h), 2e-2f) << "input idx " << i;
  }
}

TEST(GradCheck, TransformerBlock) {
  Rng rng(8);
  TransformerBlock block("b", 8, 2, 16, rng);
  Tensor x = randn({1, 4, 8}, rng);
  const Tensor w = randn({1, 4, 8}, rng);
  auto loss_fn = [&] {
    block.clear_cache();
    return weighted_sum(block.forward(x), w);
  };
  loss_fn();
  const Tensor gx = block.backward(w);
  check_param_grad(block.attention().q_proj().weight(), loss_fn, 6);
  check_param_grad(block.mlp().fc1().weight(), loss_fn, 6);
  check_param_grad(block.norm1().gain(), loss_fn, 6);
  check_param_grad(block.norm2().gain(), loss_fn, 6);

  const float h = 1e-3f;
  for (int64_t i = 0; i < x.numel(); i += 7) {
    const float orig = x[i];
    x[i] = orig + h;
    const float lp = loss_fn();
    x[i] = orig - h;
    const float lm = loss_fn();
    x[i] = orig;
    EXPECT_NEAR(gx[i], (lp - lm) / (2 * h), 2e-2f);
  }
}

TEST(GradCheck, CrossEntropyGradient) {
  Rng rng(9);
  Tensor logits = randn({4, 6}, rng);
  const std::vector<int64_t> targets = {1, 5, kIgnoreIndex, 0};
  const CrossEntropyResult ce = cross_entropy(logits, targets);
  EXPECT_EQ(ce.counted, 3);

  const float h = 1e-3f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + h;
    const float lp = cross_entropy_loss_only(logits, targets);
    logits[i] = orig - h;
    const float lm = cross_entropy_loss_only(logits, targets);
    logits[i] = orig;
    EXPECT_NEAR(ce.grad_logits[i], (lp - lm) / (2 * h), 1e-3f);
  }
  // Ignored row contributes zero gradient.
  for (int64_t v = 0; v < 6; ++v) EXPECT_FLOAT_EQ(ce.grad_logits[2 * 6 + v], 0.0f);
}

TEST(GradCheck, FullModelEndToEnd) {
  Rng rng(10);
  nn::ModelConfig cfg = tiny_config();
  CausalLm model(cfg, rng);

  const std::vector<int64_t> tokens = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<int64_t> targets = {2, 3, 4, 5, 6, 7, 8, 9};
  const ForwardPlan plan = ForwardPlan::full(cfg.n_layers);

  auto loss_fn = [&] {
    model.clear_cache();
    const Tensor logits = model.forward(tokens, 2, 4, plan);
    return cross_entropy_loss_only(logits, targets);
  };

  model.zero_grad();
  const Tensor logits = model.forward(tokens, 2, 4, plan);
  const CrossEntropyResult ce = cross_entropy(logits, targets);
  model.backward(ce.grad_logits);

  // Spot-check a parameter in every region of the network.
  for (Param* p : model.params()) {
    if (p->name == "tok_emb.weight" || p->name == "pos_emb" ||
        p->name == "block0.attn.q.weight" || p->name == "block2.mlp.fc2.weight" ||
        p->name == "exit3.norm.gain" || p->name == "lm_head.weight") {
      check_param_grad(*p, loss_fn, 6);
    }
  }
}

}  // namespace
}  // namespace edgellm::nn
