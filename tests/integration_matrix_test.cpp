// Integration matrix: the full adaptation loop must work (and improve the
// model) under every combination of the tuner's feature flags.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "data/eval.hpp"
#include "test_util.hpp"

namespace edgellm {
namespace {

using edgellm::testing::tiny_config;

struct MatrixCase {
  int64_t window;        // <=0 = full depth
  bool checkpoint;
  bool quantized_optim;
  core::DepthSampling sampling;
};

class TunerMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(TunerMatrix, AdaptationImprovesLoss) {
  const MatrixCase& mc = GetParam();

  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  dc.seed = 5;
  const data::MarkovChain domain(dc);

  Rng rng(3);
  nn::CausalLm model(tiny_config(), rng);

  core::TunerConfig tcfg;
  tcfg.sampling = mc.sampling;
  tcfg.backprop_window = mc.window;
  tcfg.checkpoint = mc.checkpoint;
  tcfg.quantized_optimizer = mc.quantized_optim;
  tcfg.update_embeddings = mc.window <= 0;
  tcfg.optim.lr = 1e-2f;

  core::AdaptiveLayerTuner tuner(model, tcfg, Rng(7));
  Rng drng(11);
  Rng eval_rng(12);
  std::vector<data::LmBatch> eval = {data::sample_lm_batch(domain, 4, 12, eval_rng)};

  const float before = data::lm_loss(model, eval, model.config().n_layers);
  for (int i = 0; i < 120; ++i) {
    const core::StepStats st = tuner.step(data::sample_lm_batch(domain, 4, 12, drng));
    ASSERT_TRUE(std::isfinite(st.loss));
    ASSERT_GT(st.activation_bytes, 0);
  }
  const float after = data::lm_loss(model, eval, model.config().n_layers);
  EXPECT_LT(after, before)
      << "window=" << mc.window << " ckpt=" << mc.checkpoint << " qopt=" << mc.quantized_optim;
}

INSTANTIATE_TEST_SUITE_P(
    AllFlagCombos, TunerMatrix,
    ::testing::Values(
        MatrixCase{0, false, false, core::DepthSampling::kFinalOnly},
        MatrixCase{0, true, false, core::DepthSampling::kFinalOnly},
        MatrixCase{0, false, true, core::DepthSampling::kFinalOnly},
        MatrixCase{0, true, true, core::DepthSampling::kFinalOnly},
        MatrixCase{2, false, false, core::DepthSampling::kUniform},
        MatrixCase{2, false, true, core::DepthSampling::kUniform},
        MatrixCase{2, false, false, core::DepthSampling::kCyclic},
        MatrixCase{2, false, false, core::DepthSampling::kLossWeighted},
        MatrixCase{1, false, true, core::DepthSampling::kCyclic}));

// Pipeline-level matrix: compression on/off x voting modes, with quality
// and artifact checks.
class PipelineMatrix : public ::testing::TestWithParam<std::tuple<bool, core::VotingMode>> {};

TEST_P(PipelineMatrix, RunsEndToEnd) {
  const auto [compress, mode] = GetParam();

  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  dc.seed = 21;
  const data::MarkovChain base(dc);
  const data::MarkovChain target = base.shifted(0.5f, 77);

  Rng rng(3);
  auto model = core::pretrain_base_model(tiny_config(), base, 150, 4, 12, rng);

  core::PipelineConfig pcfg;
  pcfg.adaptation_iters = 60;
  pcfg.batch = 4;
  pcfg.seq = 12;
  pcfg.apply_compression = compress;
  pcfg.sensitivity.bit_candidates = {4, 8};
  pcfg.sensitivity.prune_candidates = {0.0f, 0.3f};
  pcfg.luc.target_effective_bits = 6.0;
  pcfg.tuner.optim.lr = 1e-2f;
  pcfg.voter.mode = mode;

  const core::PipelineResult res = core::run_pipeline(*model, target, pcfg);
  EXPECT_EQ(res.loss_curve.size(), 60u);
  EXPECT_TRUE(std::isfinite(res.voted_loss));
  EXPECT_GT(res.voted_perplexity, 1.0f);
  EXPECT_GE(res.mcq_accuracy, 0.0f);
  EXPECT_LE(res.mcq_accuracy, 1.0f);
  EXPECT_GT(res.model_storage_bytes, 0.0);
  if (compress) {
    EXPECT_LE(res.policy.avg_effective_bits(), 6.0 + 1e-9);
  } else {
    EXPECT_EQ(res.policy.layers[0].bits, 16);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CompressAndVote, PipelineMatrix,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(core::VotingMode::kBestSingle,
                                         core::VotingMode::kCalibratedWeight,
                                         core::VotingMode::kEntropyAdaptive)));

}  // namespace
}  // namespace edgellm
