// Paged KV pool: block-table row addressing must be bitwise identical to
// contiguous KvCache storage, prefix reuse must never leak another
// sequence's divergent rows (copy-on-write), eviction must conserve the
// block population under budget pressure, and the serving engine over the
// paged pool must produce byte-identical greedy output at any thread
// count. Plus the KV-accounting regressions this change rode in with:
// release-settled high-water marks and post-degrade admission projections.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <future>

#include "serve/engine.hpp"
#include "test_util.hpp"

namespace edgellm::serve {
namespace {

using edgellm::testing::feed_positions;
using edgellm::testing::fill_row;
using edgellm::testing::greedy_request;
using edgellm::testing::iota_tokens;
using edgellm::testing::paged_cfg;
using edgellm::testing::paged_engine_cfg;
using edgellm::testing::reference_greedy;
using edgellm::testing::seq_tokens;
using edgellm::testing::tiny_config;

// --- pool mechanics ---------------------------------------------------------

TEST(PagedKvPool, BlockArithmeticAndColdAdmission) {
  obs::Registry reg;
  PagedKvPool pool(paged_cfg(4, 3, 16, /*budget=*/0, &reg));
  EXPECT_EQ(pool.block_bytes(), 4 * nn::KvCache::bytes_per_position(1, 16, false));
  // 10 positions -> 3 blocks per layer, 3 layers.
  EXPECT_EQ(pool.projected_bytes(10, 3), 9 * pool.block_bytes());

  auto r = pool.acquire(iota_tokens(6), /*projected=*/10, /*n_layers=*/3);
  ASSERT_NE(r.seq, nullptr);
  EXPECT_EQ(r.prefix_tokens, 0);  // empty cache: cold miss
  EXPECT_EQ(reg.counter("kv/prefix_miss").value(), 1);
  EXPECT_EQ(pool.committed_bytes(), 9 * pool.block_bytes());
  EXPECT_EQ(pool.bytes_in_use(), 0);  // blocks allocate lazily on append

  feed_positions(*r.seq, 6, 3);
  EXPECT_EQ(r.seq->positions(0), 6);
  EXPECT_EQ(r.seq->positions(2), 6);
  // 6 positions span 2 blocks per layer; all owned (cold admission).
  EXPECT_EQ(pool.allocated_blocks(), 6);
  EXPECT_EQ(r.seq->bytes(), 6 * pool.block_bytes());

  // Clean release donates the full blocks (4 tokens -> 1 per layer); the
  // 2-position tail is recycled.
  pool.release(r.seq, iota_tokens(6), /*reuse=*/true);
  EXPECT_EQ(pool.committed_bytes(), 0);
  EXPECT_EQ(pool.seqs_in_use(), 0);
  EXPECT_EQ(pool.cached_blocks(), 3);
  EXPECT_EQ(pool.allocated_blocks(), 3);
  EXPECT_EQ(pool.free_blocks(), 3);
  EXPECT_EQ(pool.total_blocks(), 6);  // conservation: allocated + free
  EXPECT_EQ(pool.high_water_bytes(), 6 * pool.block_bytes());
}

TEST(PagedKvPool, FailedReleaseDonatesNothing) {
  PagedKvPool pool(paged_cfg(4, 2, 8, 0));
  auto r = pool.acquire(iota_tokens(8), 8, 2);
  ASSERT_NE(r.seq, nullptr);
  feed_positions(*r.seq, 8, 2);
  pool.release(r.seq, {}, /*reuse=*/false);  // torn rows: never cached
  EXPECT_EQ(pool.cached_blocks(), 0);
  EXPECT_EQ(pool.allocated_blocks(), 0);
  EXPECT_EQ(pool.free_blocks(), 4);
  EXPECT_EQ(pool.committed_bytes(), 0);
}

TEST(PagedKvPool, RowsMatchContiguousCacheBitwise) {
  for (const bool quantize : {false, true}) {
    PagedKvPool pool(paged_cfg(4, 2, 8, 0, nullptr, quantize));
    nn::KvCache ref(2, 8, quantize);
    auto r = pool.acquire(iota_tokens(3), 11, 2);
    ASSERT_NE(r.seq, nullptr);
    std::vector<float> k, v;
    for (int64_t pos = 0; pos < 11; ++pos) {
      fill_row(pos, 8, 17, k, v);
      for (int64_t l = 0; l < 2; ++l) {
        r.seq->append(l, k.data(), v.data());
        ref.append(l, k.data(), v.data());
      }
    }
    std::vector<float> a(8), b(8);
    for (int64_t l = 0; l < 2; ++l) {
      for (int64_t pos = 0; pos < 11; ++pos) {
        r.seq->load_k(l, pos, a.data());
        ref.load_k(l, pos, b.data());
        EXPECT_EQ(std::memcmp(a.data(), b.data(), 8 * sizeof(float)), 0)
            << "k layer " << l << " pos " << pos << " quantize " << quantize;
        r.seq->load_v(l, pos, a.data());
        ref.load_v(l, pos, b.data());
        EXPECT_EQ(std::memcmp(a.data(), b.data(), 8 * sizeof(float)), 0)
            << "v layer " << l << " pos " << pos << " quantize " << quantize;
        if (!quantize) {
          ASSERT_NE(r.seq->k_row(l, pos), nullptr);
          EXPECT_EQ(std::memcmp(r.seq->k_row(l, pos), ref.k_row(l, pos), 8 * sizeof(float)), 0);
          EXPECT_EQ(std::memcmp(r.seq->v_row(l, pos), ref.v_row(l, pos), 8 * sizeof(float)), 0);
        } else {
          EXPECT_EQ(r.seq->k_row(l, pos), nullptr);
        }
      }
    }
    pool.release(r.seq, iota_tokens(11), true);
  }
}

TEST(PagedKvPool, PrefixReuseServesCachedBlocksUpToLastPromptToken) {
  obs::Registry reg;
  PagedKvPool pool(paged_cfg(4, 3, 16, 0, &reg));
  // First request: 10-token prompt, decoded 2 extra positions -> 12 cached
  // positions -> 3 full blocks per layer donated on release.
  auto a = pool.acquire(iota_tokens(10), 14, 3);
  ASSERT_NE(a.seq, nullptr);
  feed_positions(*a.seq, 12, 3);
  pool.release(a.seq, iota_tokens(12), true);
  ASSERT_EQ(pool.cached_blocks(), 9);

  // Identical prompt: reuse is capped at prompt-1 = 9 positions (2 full
  // blocks + 1 token into the third), never the last prompt token.
  auto b = pool.acquire(iota_tokens(10), 14, 3);
  ASSERT_NE(b.seq, nullptr);
  EXPECT_EQ(b.prefix_tokens, 9);
  EXPECT_EQ(b.seq->shared_len(), 9);
  EXPECT_EQ(b.seq->positions(0), 9);
  EXPECT_EQ(reg.counter("kv/prefix_hit").value(), 1);
  EXPECT_EQ(reg.counter("kv/prefix_hit_tokens").value(), 9);
  // The shared rows read back exactly what the first sequence wrote.
  std::vector<float> got(16), want_k, want_v;
  for (int64_t pos = 0; pos < 9; ++pos) {
    fill_row(pos, 16, 0, want_k, want_v);
    b.seq->load_k(1, pos, got.data());
    EXPECT_EQ(std::memcmp(got.data(), want_k.data(), 16 * sizeof(float)), 0) << pos;
  }
  // Owned bytes exclude the shared prefix: the request's marginal cost
  // shrinks, which is the whole point of reuse.
  feed_positions(*b.seq, 1, 3, /*salt=*/0);
  EXPECT_LT(b.seq->bytes(), pool.projected_bytes(10, 3));
  pool.release(b.seq, iota_tokens(10), true);

  // A shallower (degraded) sequence may reuse deep cached nodes, but a
  // deeper sequence must not reuse blocks cached at lower depth.
  auto c = pool.acquire(iota_tokens(10), 14, 2);
  ASSERT_NE(c.seq, nullptr);
  EXPECT_EQ(c.prefix_tokens, 9);
  pool.release(c.seq, iota_tokens(9), true);
}

TEST(PagedKvPool, CowForkIsolatesDivergingSequence) {
  obs::Registry reg;
  const int64_t kvd = 8;
  PagedKvPool pool(paged_cfg(4, 1, kvd, 0, &reg));
  // Cache 3 full blocks of rows written by sequence A (salt 0).
  auto a = pool.acquire(iota_tokens(12), 14, 1);
  ASSERT_NE(a.seq, nullptr);
  feed_positions(*a.seq, 12, 1, /*salt=*/0);
  pool.release(a.seq, iota_tokens(12), true);

  // B shares 9 positions (2 full blocks + 1 into the third) then appends
  // its own rows (salt 99) from position 9.
  auto b = pool.acquire(iota_tokens(10), 14, 1);
  ASSERT_NE(b.seq, nullptr);
  ASSERT_EQ(b.prefix_tokens, 9);
  feed_positions(*b.seq, 3, 1, /*salt=*/99);
  EXPECT_EQ(b.seq->cow_forks(), 1);
  EXPECT_EQ(reg.counter("kv/cow_forks").value(), 1);

  std::vector<float> got(static_cast<size_t>(kvd)), want_k, want_v;
  // B reads the copied row at position 8 (A's content) and its own at 9+.
  b.seq->load_k(0, 8, got.data());
  fill_row(8, kvd, 0, want_k, want_v);
  EXPECT_EQ(std::memcmp(got.data(), want_k.data(), sizeof(float) * kvd), 0);
  b.seq->load_k(0, 9, got.data());
  fill_row(9, kvd, 99, want_k, want_v);
  EXPECT_EQ(std::memcmp(got.data(), want_k.data(), sizeof(float) * kvd), 0);

  // The cached prefix is untouched: a third request over A's full prompt
  // still reads A's rows at positions 8..11.
  auto c = pool.acquire(iota_tokens(13), 14, 1);
  ASSERT_NE(c.seq, nullptr);
  EXPECT_EQ(c.prefix_tokens, 12);
  for (int64_t pos = 8; pos < 12; ++pos) {
    c.seq->load_k(0, pos, got.data());
    fill_row(pos, kvd, 0, want_k, want_v);
    EXPECT_EQ(std::memcmp(got.data(), want_k.data(), sizeof(float) * kvd), 0) << pos;
  }
  // B decoded two divergent tokens past its prompt: its release donates
  // under a sibling token path and must not disturb A's node.
  std::vector<int64_t> b_tokens = iota_tokens(10);
  b_tokens.push_back(20);
  b_tokens.push_back(21);
  pool.release(b.seq, b_tokens, true);
  pool.release(c.seq, iota_tokens(12), true);
  EXPECT_EQ(pool.committed_bytes(), 0);
  EXPECT_EQ(pool.allocated_blocks(), pool.cached_blocks());
}

// Review regression: a decode that died mid-tick can leave layers with
// unequal block counts (layer 0 appended past a boundary layer 1 never
// reached). reuse=false release must recycle every owned block without
// walking out of bounds or throwing on the torn state.
TEST(PagedKvPool, TornSequenceReleaseIsSafe) {
  PagedKvPool pool(paged_cfg(4, 2, 8, 0));
  auto r = pool.acquire(iota_tokens(6), 10, 2);
  ASSERT_NE(r.seq, nullptr);
  std::vector<float> k, v;
  fill_row(0, 8, 0, k, v);
  // Layer 0 fills 6 positions (2 blocks); layer 1 only 2 (1 block).
  for (int64_t i = 0; i < 6; ++i) r.seq->append(0, k.data(), v.data());
  for (int64_t i = 0; i < 2; ++i) r.seq->append(1, k.data(), v.data());
  ASSERT_EQ(pool.allocated_blocks(), 3);
  pool.release(r.seq, {}, /*reuse=*/false);
  EXPECT_EQ(pool.allocated_blocks(), 0);
  EXPECT_EQ(pool.cached_blocks(), 0);
  EXPECT_EQ(pool.free_blocks(), pool.total_blocks());
  EXPECT_EQ(pool.committed_bytes(), 0);
}

// The evictable-leaf index must evict in true LRU order: of two cached
// prefixes, the one touched by a later prefix hit survives pressure and
// the stale one goes.
TEST(PagedKvPool, EvictionPrefersLeastRecentlyUsedPrefix) {
  obs::Registry reg;
  const int64_t bb = 4 * nn::KvCache::bytes_per_position(1, 8, false);
  PagedKvPool pool(paged_cfg(4, 1, 8, /*budget=*/2 * bb, &reg));
  const auto prompt_a = iota_tokens(5);
  const auto prompt_b = seq_tokens(5, 24, 7);

  // Cache prefix A then prefix B (one full block each).
  for (const auto& prompt : {prompt_a, prompt_b}) {
    auto r = pool.acquire(prompt, 8, 1);
    ASSERT_NE(r.seq, nullptr);
    feed_positions(*r.seq, 4, 1);
    std::vector<int64_t> cached(prompt.begin(), prompt.begin() + 4);
    pool.release(r.seq, cached, true);
  }
  ASSERT_EQ(pool.cached_blocks(), 2);

  // Touch A via a prefix hit, making B the least recently used.
  auto touch = pool.acquire(prompt_a, 5, 1);
  ASSERT_NE(touch.seq, nullptr);
  ASSERT_EQ(touch.prefix_tokens, 4);
  pool.release(touch.seq, {}, false);

  // A cold sequence needs one block over budget: B must be evicted, A kept.
  auto cold = pool.acquire(seq_tokens(4, 24, 11), 4, 1);
  ASSERT_NE(cold.seq, nullptr);
  feed_positions(*cold.seq, 1, 1);
  EXPECT_EQ(reg.counter("kv/evicted_blocks").value(), 1);
  EXPECT_EQ(pool.cached_blocks(), 1);
  pool.release(cold.seq, {}, false);

  auto check_a = pool.acquire(prompt_a, 5, 1);
  ASSERT_NE(check_a.seq, nullptr);
  EXPECT_EQ(check_a.prefix_tokens, 4);  // A survived
  pool.release(check_a.seq, {}, false);
  auto check_b = pool.acquire(prompt_b, 5, 1);
  ASSERT_NE(check_b.seq, nullptr);
  EXPECT_EQ(check_b.prefix_tokens, 0);  // B was the LRU victim
  pool.release(check_b.seq, {}, false);
}

TEST(PagedKvPool, EvictionUnderPressureConservesBlocks) {
  obs::Registry reg;
  // Budget: exactly one worst-case sequence (8 positions -> 2 blocks/layer
  // x 3 layers).
  PagedKvPool pool(paged_cfg(4, 3, 16, 6 * 4 * nn::KvCache::bytes_per_position(1, 16, false),
                             &reg));
  auto a = pool.acquire(iota_tokens(8), 8, 3);
  ASSERT_NE(a.seq, nullptr);
  feed_positions(*a.seq, 7, 3);
  pool.release(a.seq, iota_tokens(7), true);
  ASSERT_EQ(pool.cached_blocks(), 3);  // 1 full block per layer

  // An unrelated sequence needs the whole budget: the cached prefix must
  // be evicted to make room, and the budget is never exceeded.
  auto b = pool.acquire(seq_tokens(8, 24, 7), 8, 3);
  ASSERT_NE(b.seq, nullptr);
  EXPECT_EQ(b.prefix_tokens, 0);
  feed_positions(*b.seq, 8, 3, /*salt=*/5);
  EXPECT_EQ(reg.counter("kv/evicted_blocks").value(), 3);
  EXPECT_EQ(pool.cached_blocks(), 0);
  EXPECT_LE(pool.bytes_in_use(), pool.byte_budget());
  EXPECT_EQ(pool.allocated_blocks() + pool.free_blocks(), pool.total_blocks());
  pool.release(b.seq, seq_tokens(8, 24, 7), true);
  EXPECT_EQ(pool.committed_bytes(), 0);
  EXPECT_EQ(pool.allocated_blocks(), pool.cached_blocks());
}

TEST(PagedKvPool, PinnedPrefixCountsAgainstAdmission) {
  // One cached+pinned prefix plus a full-size reservation exactly fills
  // the budget: a third acquire must be rejected, not stranded mid-decode.
  const int64_t bb = 4 * nn::KvCache::bytes_per_position(1, 16, false);
  PagedKvPool pool(paged_cfg(4, 1, 16, 5 * bb));
  auto a = pool.acquire(iota_tokens(8), 8, 1);
  ASSERT_NE(a.seq, nullptr);
  feed_positions(*a.seq, 8, 1);
  pool.release(a.seq, iota_tokens(8), true);  // 2 cached blocks

  auto b = pool.acquire(iota_tokens(6), 8, 1);  // pins 1 full shared block
  ASSERT_NE(b.seq, nullptr);
  EXPECT_EQ(b.prefix_tokens, 5);
  // committed = pinned shared (2 blocks: the node holds both) + owned
  // reservation (2 - 1 fully shared = 1... projected 8 -> 2 blocks, 1
  // shared full -> 1 owned).
  EXPECT_EQ(pool.committed_bytes(), 2 * bb + 1 * bb);
  // Remaining budget: 5 - 3 = 2 blocks. A cold 3-block ask must bounce.
  auto c = pool.acquire(seq_tokens(9, 24, 3), 12, 1);
  EXPECT_EQ(c.seq, nullptr);
  EXPECT_EQ(c.reason, KvAdmitReason::kByteBudget);
  auto d = pool.acquire(seq_tokens(8, 24, 3), 8, 1);  // 2 blocks: fits
  ASSERT_NE(d.seq, nullptr);
  pool.release(d.seq, {}, false);
  pool.release(b.seq, {}, false);
  EXPECT_EQ(pool.committed_bytes(), 0);
}

// Review regression: the scheduler must only donate a finished sequence's
// rows to the prefix cache for trusted terminals. finish(reuse=false) —
// the engine's kFailed path — recycles everything instead.
TEST(PagedScheduler, FailedFinishRecyclesInsteadOfDonating) {
  SchedulerConfig scfg;
  scfg.max_batch = 2;
  scfg.queue_capacity = 4;
  scfg.max_seq = 16;
  scfg.n_layers = 2;
  KvPoolConfig pcfg;
  pcfg.n_slots = 2;
  pcfg.kv_dim = 8;
  pcfg.paged = true;
  pcfg.block_tokens = 4;
  Scheduler sched(scfg, pcfg);

  auto run_one = [&](bool reuse) {
    auto s = std::make_unique<SeqState>();
    s->req.id = reuse ? 1 : 2;
    s->req.prompt = iota_tokens(8);
    s->req.max_new_tokens = 4;
    s->exit_layer_used = 2;
    ASSERT_TRUE(sched.enqueue(s));
    const auto r = sched.admit(0, DegradeLadder{}, std::chrono::steady_clock::now());
    ASSERT_EQ(r.admitted, 1);
    SeqState& a = *sched.active()[0];
    feed_positions(*a.kv, 8, 2);
    a.position = 8;
    a.prompt_fed = 8;
    auto done = sched.finish(0, reuse);
    ASSERT_NE(done, nullptr);
  };

  run_one(/*reuse=*/false);  // failed decode: rows untrusted
  EXPECT_EQ(sched.paged_pool()->cached_blocks(), 0);
  EXPECT_EQ(sched.paged_pool()->committed_bytes(), 0);

  run_one(/*reuse=*/true);  // clean completion donates (8 pos = 2 blocks x 2 layers)
  EXPECT_EQ(sched.paged_pool()->cached_blocks(), 4);
  EXPECT_EQ(sched.paged_pool()->committed_bytes(), 0);
}

// --- KV accounting regressions ----------------------------------------------

// A slot that grows and dies entirely between two sync_live_bytes()
// barriers must still be visible: release() settles the dying slot's final
// bytes into the high-water mark immediately.
TEST(KvCachePoolAccounting, HighWaterSeenWithoutSync) {
  KvPoolConfig cfg;
  cfg.n_slots = 2;
  cfg.kv_dim = 16;
  KvCachePool pool(cfg);
  const int64_t s = pool.acquire(4, 1);
  ASSERT_GE(s, 0);
  std::vector<float> row(16, 1.0f);
  pool.slot(s).append(0, row.data(), row.data());
  pool.slot(s).append(0, row.data(), row.data());
  // No sync between the appends and the release.
  pool.release(s);
  EXPECT_EQ(pool.bytes_in_use(), 0);
  EXPECT_EQ(pool.high_water_bytes(), 2 * nn::KvCache::bytes_per_position(1, 16, false));
}

// --- engine over the paged pool ---------------------------------------------

// The determinism contract of the tentpole: greedy completions through the
// paged pool are byte-identical to single-sequence contiguous decode, at
// any worker-thread count and any (odd) block size.
TEST(PagedEngine, GreedyByteIdenticalToContiguousAtAnyThreadCount) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(40);
  nn::CausalLm model(cfg, rng);

  std::vector<std::vector<int64_t>> prompts;
  for (int64_t i = 0; i < 6; ++i) prompts.push_back(seq_tokens(3 + (i % 4), cfg.vocab, i * 3));
  std::vector<std::vector<int64_t>> want;
  for (const auto& p : prompts) want.push_back(reference_greedy(model, p, 6));

  for (const int64_t threads : {int64_t{1}, int64_t{2}, int64_t{8}}) {
    ServeEngine engine(model, paged_engine_cfg(threads, /*block_tokens=*/5));
    std::vector<std::future<Completion>> futs;
    for (size_t i = 0; i < prompts.size(); ++i) {
      futs.push_back(engine.submit(greedy_request(static_cast<int64_t>(i), prompts[i], 6)));
    }
    for (size_t i = 0; i < futs.size(); ++i) {
      const Completion c = futs[i].get();
      EXPECT_EQ(c.status, RequestStatus::kOk);
      EXPECT_EQ(c.tokens, want[i]) << "threads " << threads << " request " << i;
    }
  }
}

// Quantized and voted paths: paged vs slot-pool engines must agree exactly
// (the reference decoder does not cover these engine configs).
TEST(PagedEngine, QuantizedAndVotedMatchSlotPool) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(41);
  nn::CausalLm model(cfg, rng);
  const auto prompt = seq_tokens(5, cfg.vocab, 2);

  for (const bool quantize : {false, true}) {
    EngineConfig slot_cfg;
    slot_cfg.threads = 2;
    slot_cfg.quantize_kv = quantize;
    EngineConfig paged = paged_engine_cfg(2);
    paged.quantize_kv = quantize;

    Completion a, b;
    {
      ServeEngine engine(model, slot_cfg);
      a = engine.submit(greedy_request(1, prompt, 5, ExitPolicy::kVoted)).get();
    }
    {
      ServeEngine engine(model, paged);
      b = engine.submit(greedy_request(1, prompt, 5, ExitPolicy::kVoted)).get();
    }
    EXPECT_EQ(a.status, RequestStatus::kOk);
    EXPECT_EQ(b.status, RequestStatus::kOk);
    EXPECT_EQ(a.tokens, b.tokens) << "quantize " << quantize;
  }
}

// Chunked prefill feeds several prompt tokens per tick; outputs must not
// change (the last prompt token still decodes in the main batch).
TEST(PagedEngine, ChunkedPrefillKeepsOutputsIdentical) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(42);
  nn::CausalLm model(cfg, rng);
  const auto prompt = seq_tokens(8, cfg.vocab, 1);
  const auto want = reference_greedy(model, prompt, 5);

  EngineConfig ecfg = paged_engine_cfg(2);
  ecfg.prefill_chunk = 4;
  ServeEngine engine(model, ecfg);
  const Completion c = engine.submit(greedy_request(7, prompt, 5)).get();
  EXPECT_EQ(c.status, RequestStatus::kOk);
  EXPECT_EQ(c.tokens, want);
}

// Cross-request reuse end to end: a repeated prompt hits the prefix cache,
// skips its prefill, and still produces byte-identical greedy output.
TEST(PagedEngine, RepeatedPromptHitsPrefixCacheWithIdenticalOutput) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(43);
  nn::CausalLm model(cfg, rng);
  const auto prompt = seq_tokens(10, cfg.vocab, 4);
  const auto want = reference_greedy(model, prompt, 4);

  ServeEngine engine(model, paged_engine_cfg(1));
  const Completion first = engine.submit(greedy_request(1, prompt, 4)).get();
  EXPECT_EQ(first.tokens, want);
  EXPECT_EQ(engine.registry().counter("kv/prefix_hit").value(), 0);

  const Completion second = engine.submit(greedy_request(2, prompt, 4)).get();
  EXPECT_EQ(second.status, RequestStatus::kOk);
  EXPECT_EQ(second.tokens, want);
  EXPECT_EQ(engine.registry().counter("kv/prefix_hit").value(), 1);
  // Reuse cap: prompt-1 = 9 positions were served from cache (2 full
  // 4-token blocks + 1 into the third).
  EXPECT_EQ(engine.registry().counter("kv/prefix_hit_tokens").value(), 9);
  engine.shutdown();
  // Drain invariant: nothing committed, everything either cached or free.
  EXPECT_EQ(engine.registry().gauge("kv/committed_bytes").value(), 0);
  EXPECT_EQ(engine.registry().counter("kv/acquired").value(),
            engine.registry().counter("kv/released").value());
}

// Satellite regression: a request that only fits the budget *after* the
// admission ladder degrades it must be queued and served degraded, not
// rejected up front on its full-depth projection.
TEST(PagedEngine, DegradedRequestAdmitsWhereFullDepthWouldBeRejected) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(44);
  nn::CausalLm model(cfg, rng);
  const auto prompt = seq_tokens(4, cfg.vocab, 0);

  const int64_t per_pos_1 = nn::KvCache::bytes_per_position(1, cfg.kv_dim(), false);
  EngineConfig ecfg;
  ecfg.threads = 1;
  ecfg.queue_capacity = 8;
  // Budget fits two depth-1 sequences of 8 positions; a full-depth (3
  // layer) projection of the same request is 3x and can never fit.
  ecfg.kv_byte_budget = 2 * 8 * per_pos_1;
  ecfg.admission.shed_policy = ShedPolicy::kDegradeEarlyExit;
  ecfg.admission.shed_queue_ratio = 0.05;  // second queued request trips it
  ServeEngine engine(model, ecfg);
  ASSERT_GT(ecfg.kv_byte_budget, 0);

  engine.pause();
  // Filler occupies the queue so the victim submits under pressure and is
  // marked force-degrade; it asks for depth 1 outright so it always fits.
  auto filler = engine.submit(greedy_request(1, prompt, 4, ExitPolicy::kFixedEarly, 1));
  auto victim = engine.submit(greedy_request(2, prompt, 4));  // full-depth ask
  engine.resume();

  const Completion f = filler.get();
  EXPECT_EQ(f.status, RequestStatus::kOk);
  const Completion v = victim.get();
  EXPECT_EQ(v.status, RequestStatus::kOk) << v.error;
  EXPECT_TRUE(v.degraded);
  EXPECT_EQ(v.exit_layer_used, 1);
  EXPECT_EQ(v.tokens, reference_greedy(model, prompt, 4, /*exit_layer=*/1));
}

// Review regression (end to end): a request that fails mid-decode must not
// donate its rows to the prefix cache — poisoned logits fail the request
// after its whole prompt was appended, which the old reuse-always release
// would have cached for the next identical prompt.
TEST(PagedEngine, FailedDecodeDoesNotDonateToPrefixCache) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(45);
  nn::CausalLm model(cfg, rng);

  runtime::ServeFaultPlan plan;
  plan.poison_logits_prob = 1.0;
  runtime::ServeFaultInjector fault(plan);
  EngineConfig ecfg = paged_engine_cfg(1);
  ecfg.fault = &fault;
  ServeEngine engine(model, ecfg);

  const Completion c = engine.submit(greedy_request(1, seq_tokens(8, cfg.vocab, 2), 4)).get();
  EXPECT_EQ(c.status, RequestStatus::kFailed);
  engine.shutdown();
  EXPECT_EQ(engine.registry().gauge("kv/blocks_cached").value(), 0);
  EXPECT_EQ(engine.registry().gauge("kv/committed_bytes").value(), 0);
  EXPECT_EQ(engine.registry().counter("kv/acquired").value(),
            engine.registry().counter("kv/released").value());
}

// Review regression: a request that only fits the budget at the ladder
// floor, arriving under LOW pressure (no threshold tripped at submit), is
// admitted on the floor-depth projection. Admission must then degrade the
// stuck head after degrade_budget_retries byte-budget rejections — with
// the old code it retried at full depth forever and wedged the queue.
TEST(PagedEngine, BudgetStuckHeadDegradesInsteadOfWedging) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(46);
  nn::CausalLm model(cfg, rng);
  const auto prompt = seq_tokens(4, cfg.vocab, 0);
  const auto want = reference_greedy(model, prompt, 4, /*exit_layer=*/1);

  const int64_t per_pos_1 = nn::KvCache::bytes_per_position(1, cfg.kv_dim(), false);
  for (const bool paged : {false, true}) {
    EngineConfig ecfg;
    ecfg.threads = 1;
    ecfg.kv_paged = paged;
    ecfg.kv_block_tokens = 4;
    // 8 projected positions: fits at the depth-1 floor (8 blocks-worth),
    // never at the full 3-layer depth (24) — for either pool backing.
    ecfg.kv_byte_budget = 16 * per_pos_1;
    // A degrade mechanism is configured but its threshold never trips for
    // this lone request, so submit-time pressure cannot save it.
    ecfg.admission.degrade_queue_ratio = 0.95;
    ServeEngine engine(model, ecfg);

    const Completion c = engine.submit(greedy_request(1, prompt, 4)).get();
    EXPECT_EQ(c.status, RequestStatus::kOk) << "paged=" << paged << " " << c.error;
    EXPECT_TRUE(c.degraded) << "paged=" << paged;
    EXPECT_EQ(c.exit_layer_used, 1) << "paged=" << paged;
    EXPECT_EQ(c.tokens, want) << "paged=" << paged;
    EXPECT_EQ(engine.metrics().degraded, 1) << "paged=" << paged;
  }
}

}  // namespace
}  // namespace edgellm::serve
