// Template-language corpus tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/tuner.hpp"
#include "data/eval.hpp"
#include "data/template_lang.hpp"
#include "test_util.hpp"

namespace edgellm::data {
namespace {

TemplateLanguage::Config base_cfg() {
  TemplateLanguage::Config cfg;
  cfg.n_subjects = 6;
  cfg.n_verbs = 6;
  cfg.n_objects = 8;
  cfg.n_modifiers = 3;
  cfg.preferred = 2;
  cfg.seed = 17;
  return cfg;
}

TEST(TemplateLang, VocabLayout) {
  const TemplateLanguage lang(base_cfg());
  EXPECT_EQ(lang.vocab(), 6 + 6 + 8 + 3 + 1);
  EXPECT_EQ(lang.verb_base(), 6);
  EXPECT_EQ(lang.object_base(), 12);
  EXPECT_EQ(lang.modifier_base(), 20);
  EXPECT_EQ(lang.punct_token(), 23);
  EXPECT_TRUE(lang.is_subject(0));
  EXPECT_TRUE(lang.is_verb(7));
  EXPECT_TRUE(lang.is_object(12));
  EXPECT_FALSE(lang.is_object(20));
}

TEST(TemplateLang, ConfigValidation) {
  auto cfg = base_cfg();
  cfg.preferred = 8;
  EXPECT_THROW(TemplateLanguage{cfg}, std::invalid_argument);
  cfg = base_cfg();
  cfg.obedience = 0.3f;
  EXPECT_THROW(TemplateLanguage{cfg}, std::invalid_argument);
}

TEST(TemplateLang, RulesAreDeterministicAndInRange) {
  const TemplateLanguage lang(base_cfg());
  for (int64_t s = 0; s < 6; ++s) {
    const auto pv = lang.preferred_verbs(s);
    EXPECT_EQ(pv, lang.preferred_verbs(s));
    EXPECT_EQ(pv.size(), 2u);
    for (int64_t v : pv) EXPECT_TRUE(lang.is_verb(v));
    for (int64_t v : pv) {
      const auto po = lang.preferred_objects(s, v);
      EXPECT_EQ(po.size(), 2u);
      for (int64_t o : po) EXPECT_TRUE(lang.is_object(o));
    }
  }
  EXPECT_THROW(lang.preferred_verbs(10), std::invalid_argument);
  EXPECT_THROW(lang.preferred_objects(0, 0), std::invalid_argument);
}

TEST(TemplateLang, SampledSentencesFollowGrammar) {
  const TemplateLanguage lang(base_cfg());
  Rng rng(1);
  const auto stream = lang.sample(400, rng);
  EXPECT_EQ(stream.size(), 400u);

  // Walk sentences: SUBJ [MOD] VERB OBJ PUNCT, repeatedly.
  size_t i = 0;
  int sentences = 0, obeyed_obj = 0;
  while (i < stream.size()) {
    if (!lang.is_subject(stream[i])) break;  // truncated tail
    const int64_t subj = stream[i++];
    if (i < stream.size() && stream[i] >= lang.modifier_base() &&
        stream[i] < lang.punct_token()) {
      ++i;  // modifier
    }
    if (i >= stream.size()) break;
    if (!lang.is_verb(stream[i])) break;
    const int64_t verb = stream[i++];
    if (i >= stream.size()) break;
    if (!lang.is_object(stream[i])) break;
    const int64_t obj = stream[i++];
    if (i >= stream.size()) break;
    EXPECT_EQ(stream[i], lang.punct_token());
    ++i;
    ++sentences;
    const auto po = lang.preferred_objects(subj, verb);
    if (std::find(po.begin(), po.end(), obj) != po.end()) ++obeyed_obj;
  }
  EXPECT_GT(sentences, 60);
  // ~obedience^1 of objects follow the (subject, verb) table. Bernoulli
  // noise on verbs breaks some pairs, so just require a strong majority.
  EXPECT_GT(static_cast<double>(obeyed_obj) / sentences, 0.6);
}

TEST(TemplateLang, ShiftChangesSomeSubjectsOnly) {
  auto cfg = base_cfg();
  cfg.n_subjects = 24;  // enough subjects that the per-subject coin averages out
  const TemplateLanguage base(cfg);
  const TemplateLanguage shifted = base.shifted(0.4f, 99);
  int changed = 0;
  for (int64_t s = 0; s < cfg.n_subjects; ++s) {
    if (base.preferred_verbs(s) != shifted.preferred_verbs(s)) ++changed;
  }
  EXPECT_GT(changed, 0);
  EXPECT_LT(changed, static_cast<int>(cfg.n_subjects));
  const TemplateLanguage same = base.shifted(0.0f, 99);
  for (int64_t s = 0; s < cfg.n_subjects; ++s) {
    EXPECT_EQ(base.preferred_verbs(s), same.preferred_verbs(s));
  }
}

TEST(TemplateLang, ClozeSetWellFormed) {
  const TemplateLanguage lang(base_cfg());
  Rng rng(2);
  const auto items = lang.make_cloze_set(20, 4, rng);
  ASSERT_EQ(items.size(), 20u);
  for (const McqItem& it : items) {
    ASSERT_EQ(it.choices.size(), 4u);
    for (const auto& c : it.choices) {
      ASSERT_EQ(c.size(), 1u);
      EXPECT_TRUE(lang.is_object(c[0]));
    }
    // The prompt ends with a verb; the correct choice is preferred for the
    // (subject, verb) pair while distractors are not.
    const int64_t verb = it.prompt.back();
    EXPECT_TRUE(lang.is_verb(verb));
    int64_t subj = -1;
    for (auto iter = it.prompt.rbegin(); iter != it.prompt.rend(); ++iter) {
      if (lang.is_subject(*iter)) {
        subj = *iter;
        break;
      }
    }
    ASSERT_GE(subj, 0);
    const auto po = lang.preferred_objects(subj, verb);
    EXPECT_NE(std::find(po.begin(), po.end(), it.choices[static_cast<size_t>(it.correct)][0]),
              po.end());
    for (size_t c = 0; c < it.choices.size(); ++c) {
      if (static_cast<int64_t>(c) == it.correct) continue;
      EXPECT_EQ(std::find(po.begin(), po.end(), it.choices[c][0]), po.end());
    }
  }
}

// Oracle: scoring with the true preference tables solves the cloze task.
TEST(TemplateLang, OracleSolvesCloze) {
  const TemplateLanguage lang(base_cfg());
  Rng rng(3);
  const auto items = lang.make_cloze_set(40, 4, rng);
  LogitsFn oracle = [&lang](const std::vector<int64_t>& tokens, int64_t seq) {
    Tensor logits({seq, lang.vocab()}, 0.0f);
    // Only the final position matters for single-token continuations: find
    // the last subject+verb and boost its preferred objects.
    for (int64_t p = 0; p < seq - 1; ++p) {
      const int64_t next = p + 1;
      if (next < seq && lang.is_verb(tokens[static_cast<size_t>(p)])) {
        // locate the subject before this verb
        for (int64_t b = p - 1; b >= 0; --b) {
          if (lang.is_subject(tokens[static_cast<size_t>(b)])) {
            for (int64_t o : lang.preferred_objects(tokens[static_cast<size_t>(b)],
                                                    tokens[static_cast<size_t>(p)])) {
              logits[p * lang.vocab() + o] = 10.0f;
            }
            break;
          }
        }
      }
    }
    return logits;
  };
  EXPECT_GT(mcq_accuracy(oracle, items, lang.vocab()), 0.9f);
}

// A small transformer learns the language (loss drops well below the
// unigram floor) — end-to-end trainability of the structured corpus.
TEST(TemplateLang, ModelLearnsStructure) {
  const TemplateLanguage lang(base_cfg());
  nn::ModelConfig mcfg = edgellm::testing::tiny_config();
  mcfg.vocab = lang.vocab();
  Rng rng(4);
  nn::CausalLm model(mcfg, rng);

  core::TunerConfig tcfg = core::TunerConfig::vanilla();
  tcfg.optim.lr = 1e-2f;
  core::AdaptiveLayerTuner tuner(model, tcfg, Rng(5));
  Rng drng(6);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 200; ++i) {
    const auto stream = lang.sample(4 * 13, drng);
    const auto batches = make_lm_batches(stream, 4, 12);
    const auto st = tuner.step(batches[0]);
    if (i < 20) first += st.loss;
    if (i >= 180) last += st.loss;
  }
  EXPECT_LT(last, first * 0.85f);
}

}  // namespace
}  // namespace edgellm::data
