// Core Edge-LLM components: sensitivity, LUC search, tuner, voter.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/luc.hpp"
#include "core/pipeline.hpp"
#include "core/tuner.hpp"
#include "core/voting.hpp"
#include "data/eval.hpp"
#include "test_util.hpp"

namespace edgellm::core {
namespace {

using edgellm::testing::tiny_config;

data::MarkovChain test_domain(uint64_t seed = 5) {
  data::MarkovChain::Config cfg;
  cfg.vocab = 24;
  cfg.order = 1;  // learnable by a tiny model in ~100 iterations
  cfg.branch = 3;
  cfg.mass = 0.85f;
  cfg.seed = seed;
  return data::MarkovChain(cfg);
}

SensitivityConfig small_sens() {
  SensitivityConfig s;
  s.bit_candidates = {2, 4, 8};
  s.prune_candidates = {0.0f, 0.5f};
  return s;
}

TEST(Sensitivity, ProfileShapeAndRestoration) {
  Rng rng(1);
  nn::CausalLm model(tiny_config(), rng);
  const data::MarkovChain domain = test_domain();
  std::vector<data::LmBatch> calib = {data::sample_lm_batch(domain, 2, 8, rng)};

  const Tensor before = model.forward_eval(calib[0].inputs, 2, 8, 3);
  const SensitivityProfile prof = analyze_sensitivity(model, calib, small_sens());
  const Tensor after = model.forward_eval(calib[0].inputs, 2, 8, 3);
  EXPECT_TRUE(before.allclose(after, 1e-6f));  // model restored

  ASSERT_EQ(prof.layers.size(), 3u);
  for (const LayerSensitivity& l : prof.layers) {
    EXPECT_EQ(l.bit_delta.size(), 3u);
    EXPECT_EQ(l.prune_delta.size(), 2u);
    EXPECT_FLOAT_EQ(l.prune_delta.at(0.0f), 0.0f);
    // Aggressive compression should hurt at least as much as mild. On an
    // untrained model the deltas are mostly noise, so allow generous slack;
    // the ordering with a *trained* model is exercised by the benches.
    EXPECT_GE(l.bit_delta.at(2), l.bit_delta.at(8) - 0.15f);
  }
  EXPECT_GT(prof.baseline_loss, 0.0f);
}

TEST(Sensitivity, EstimateIsAdditive) {
  LayerSensitivity s;
  s.bit_delta[4] = 0.2f;
  s.prune_delta[0.5f] = 0.3f;
  EXPECT_FLOAT_EQ(s.estimate(4, 0.5f), 0.5f);
  EXPECT_THROW(s.estimate(3, 0.5f), std::invalid_argument);
  EXPECT_THROW(s.estimate(4, 0.3f), std::invalid_argument);
}

TEST(Sensitivity, JointMeasurementPreferredOverAdditive) {
  LayerSensitivity s;
  s.bit_delta[4] = 0.2f;
  s.prune_delta[0.5f] = 0.3f;
  s.joint_delta[{4, 0.5f}] = 0.9f;  // interaction makes it worse than 0.5
  EXPECT_FLOAT_EQ(s.estimate(4, 0.5f), 0.9f);
}

TEST(Sensitivity, JointProfileProbesFullGrid) {
  Rng rng(41);
  nn::CausalLm model(tiny_config(), rng);
  const data::MarkovChain domain = test_domain();
  std::vector<data::LmBatch> calib = {data::sample_lm_batch(domain, 2, 8, rng)};

  SensitivityConfig cfg = small_sens();
  cfg.joint = true;
  const SensitivityProfile prof = analyze_sensitivity(model, calib, cfg);
  for (const LayerSensitivity& l : prof.layers) {
    EXPECT_EQ(l.joint_delta.size(),
              cfg.bit_candidates.size() * cfg.prune_candidates.size());
    // Joint quant-only points equal the marginal bit measurement.
    for (int b : cfg.bit_candidates) {
      EXPECT_FLOAT_EQ(l.joint_delta.at({b, 0.0f}), l.bit_delta.at(b));
    }
  }
  // The model is restored afterwards (no compression left behind).
  for (nn::TransformerBlock* b : model.blocks()) {
    EXPECT_FALSE(b->linears()[0]->quant_spec().has_value());
  }
}

SensitivityProfile synthetic_profile(int layers) {
  // Layer i has sensitivity proportional to (layers - i): early layers are
  // fragile, late layers are robust (a common empirical pattern).
  SensitivityProfile prof;
  SensitivityConfig cands = small_sens();
  for (int i = 0; i < layers; ++i) {
    LayerSensitivity s;
    s.layer = i;
    const float scale = static_cast<float>(layers - i);
    for (int b : cands.bit_candidates) s.bit_delta[b] = scale * (8.0f - b) * 0.1f;
    for (float p : cands.prune_candidates) s.prune_delta[p] = scale * p * 0.2f;
    prof.layers.push_back(std::move(s));
  }
  return prof;
}

TEST(Luc, BothSearchesMeetBudget) {
  const SensitivityProfile prof = synthetic_profile(6);
  const SensitivityConfig cands = small_sens();
  for (auto mode : {LucConfig::Search::kGreedy, LucConfig::Search::kExactDp}) {
    LucConfig cfg;
    cfg.target_effective_bits = 3.0;
    cfg.search = mode;
    const LucPolicy p = search_luc_policy(prof, cands, cfg);
    EXPECT_LE(p.avg_effective_bits(), 3.0 + 1e-9);
    EXPECT_EQ(p.layers.size(), 6u);
  }
}

TEST(Luc, DpNeverWorseThanGreedy) {
  const SensitivityConfig cands = small_sens();
  for (int layers : {4, 6, 9}) {
    const SensitivityProfile prof = synthetic_profile(layers);
    for (double budget : {2.0, 3.0, 4.0}) {
      LucConfig g{budget, LucConfig::Search::kGreedy};
      LucConfig d{budget, LucConfig::Search::kExactDp};
      const LucPolicy pg = search_luc_policy(prof, cands, g);
      const LucPolicy pd = search_luc_policy(prof, cands, d);
      EXPECT_LE(pd.predicted_delta, pg.predicted_delta + 1e-5f)
          << "layers=" << layers << " budget=" << budget;
    }
  }
}

TEST(Luc, AllocatesMoreBitsToSensitiveLayers) {
  const SensitivityProfile prof = synthetic_profile(6);
  LucConfig cfg;
  cfg.target_effective_bits = 3.0;
  cfg.search = LucConfig::Search::kExactDp;
  const LucPolicy p = search_luc_policy(prof, cfg.search == LucConfig::Search::kExactDp
                                                  ? small_sens()
                                                  : small_sens(),
                                        cfg);
  // Layer 0 is most sensitive, layer 5 least: effective bits must not
  // increase from fragile to robust layers on average.
  EXPECT_GE(p.layers.front().effective_bits(), p.layers.back().effective_bits());
}

TEST(Luc, UniformPolicyRespectsBudget) {
  const SensitivityConfig cands = small_sens();
  const LucPolicy u = uniform_policy(5, cands, 3.0);
  EXPECT_EQ(u.layers.size(), 5u);
  EXPECT_LE(u.avg_effective_bits(), 3.0 + 1e-9);
  for (size_t i = 1; i < u.layers.size(); ++i) {
    EXPECT_EQ(u.layers[i].bits, u.layers[0].bits);
    EXPECT_EQ(u.layers[i].sparsity, u.layers[0].sparsity);
  }
}

TEST(Luc, ApplyPolicySetsSpecs) {
  Rng rng(2);
  nn::CausalLm model(tiny_config(), rng);
  LucPolicy p;
  p.layers = {{4, 0.5f}, {8, 0.0f}, {2, 0.3f}};
  apply_policy(model, p);
  auto blocks = model.blocks();
  EXPECT_EQ(blocks[0]->linears()[0]->quant_spec()->bits, 4);
  EXPECT_FLOAT_EQ(blocks[0]->linears()[0]->prune_spec()->sparsity, 0.5f);
  EXPECT_EQ(blocks[1]->linears()[0]->quant_spec()->bits, 8);
  EXPECT_FALSE(blocks[1]->linears()[0]->prune_spec().has_value());
  EXPECT_EQ(blocks[2]->linears()[0]->quant_spec()->bits, 2);

  clear_policy(model);
  EXPECT_FALSE(blocks[0]->linears()[0]->quant_spec().has_value());

  p.layers.resize(2);
  EXPECT_THROW(apply_policy(model, p), std::invalid_argument);
}

TEST(Luc, PolicyToCompression) {
  LucPolicy p;
  p.layers = {{4, 0.5f}, {16, 0.0f}};
  const auto comp = policy_to_compression(p, prune::Pattern::kRow);
  ASSERT_EQ(comp.size(), 2u);
  EXPECT_EQ(comp[0].weight_bits, 4);
  EXPECT_TRUE(comp[0].structured);
  const auto comp_u = policy_to_compression(p, prune::Pattern::kUnstructured);
  EXPECT_FALSE(comp_u[0].structured);
}

TEST(Tuner, LossDecreasesOnEasyDomain) {
  Rng rng(3);
  nn::CausalLm model(tiny_config(), rng);
  const data::MarkovChain domain = test_domain();
  TunerConfig cfg;
  cfg.sampling = DepthSampling::kCyclic;
  cfg.backprop_window = 2;
  cfg.optim.lr = 1e-2f;
  AdaptiveLayerTuner tuner(model, cfg, Rng(7));

  Rng data_rng(11);
  float first_losses = 0.0f, last_losses = 0.0f;
  const int iters = 120;
  for (int i = 0; i < iters; ++i) {
    const auto batch = data::sample_lm_batch(domain, 4, 12, data_rng);
    const StepStats st = tuner.step(batch);
    if (i < 15) first_losses += st.loss;
    if (i >= iters - 15) last_losses += st.loss;
  }
  EXPECT_LT(last_losses, first_losses * 0.9f);
  EXPECT_EQ(tuner.iterations(), iters);
}

TEST(Tuner, WindowLimitsMemoryFootprint) {
  const data::MarkovChain domain = test_domain();
  Rng data_rng(12);
  const auto batch = data::sample_lm_batch(domain, 4, 12, data_rng);

  auto run_step = [&](TunerConfig cfg) {
    Rng rng(4);
    nn::CausalLm model(tiny_config(), rng);
    AdaptiveLayerTuner tuner(model, cfg, Rng(8));
    return tuner.step(batch);
  };

  TunerConfig narrow;
  narrow.sampling = DepthSampling::kFinalOnly;
  narrow.backprop_window = 1;
  TunerConfig full = TunerConfig::vanilla();

  const StepStats a = run_step(narrow);
  const StepStats b = run_step(full);
  EXPECT_LT(a.activation_bytes, b.activation_bytes);
  EXPECT_LT(a.grad_bytes, b.grad_bytes);
  EXPECT_LT(a.optimizer_state_bytes, b.optimizer_state_bytes);
  EXPECT_EQ(a.backprop_depth, 1);
  EXPECT_EQ(b.backprop_depth, 3);
}

TEST(Tuner, SamplingModes) {
  Rng rng(5);
  nn::CausalLm model(tiny_config(), rng);
  const data::MarkovChain domain = test_domain();
  Rng data_rng(13);

  // Cyclic visits every exit in order.
  TunerConfig cyc;
  cyc.sampling = DepthSampling::kCyclic;
  AdaptiveLayerTuner tuner(model, cyc, Rng(9));
  std::vector<int64_t> seen;
  for (int i = 0; i < 6; ++i) {
    seen.push_back(tuner.step(data::sample_lm_batch(domain, 2, 8, data_rng)).exit_layer);
  }
  EXPECT_EQ(seen, (std::vector<int64_t>{1, 2, 3, 1, 2, 3}));

  // Final-only always ends at the last layer.
  TunerConfig fin;
  fin.sampling = DepthSampling::kFinalOnly;
  AdaptiveLayerTuner t2(model, fin, Rng(10));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(t2.step(data::sample_lm_batch(domain, 2, 8, data_rng)).exit_layer, 3);
  }

  // Probabilities sum to one in every mode.
  for (auto mode : {DepthSampling::kUniform, DepthSampling::kCyclic,
                    DepthSampling::kLossWeighted, DepthSampling::kFinalOnly}) {
    TunerConfig c;
    c.sampling = mode;
    AdaptiveLayerTuner t(model, c, Rng(11));
    const auto probs = t.exit_probabilities();
    double total = 0.0;
    for (double p : probs) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(Tuner, PlanConstruction) {
  Rng rng(6);
  nn::CausalLm model(tiny_config(), rng);
  TunerConfig cfg;
  cfg.backprop_window = 2;
  AdaptiveLayerTuner tuner(model, cfg, Rng(12));
  const nn::ForwardPlan p1 = tuner.make_plan(1);
  EXPECT_EQ(p1.backprop_depth, 1);  // clamped to exit depth
  const nn::ForwardPlan p3 = tuner.make_plan(3);
  EXPECT_EQ(p3.backprop_depth, 2);
}

TEST(Voter, WeightsFormDistributionAndPreferLowLoss) {
  Rng rng(7);
  nn::CausalLm model(tiny_config(), rng);
  const data::MarkovChain domain = test_domain();
  Rng data_rng(14);
  std::vector<data::LmBatch> calib = {data::sample_lm_batch(domain, 2, 8, data_rng)};

  ExitVoter voter(model, {VotingMode::kCalibratedWeight, 0.5f});
  voter.calibrate(calib);
  const auto& w = voter.weights();
  double total = 0.0;
  for (float x : w) {
    EXPECT_GT(x, 0.0f);
    total += x;
  }
  EXPECT_NEAR(total, 1.0, 1e-5);

  // The best-calibrated exit gets the largest weight.
  const auto& losses = voter.calib_losses();
  const size_t best = static_cast<size_t>(
      std::min_element(losses.begin(), losses.end()) - losses.begin());
  for (size_t e = 0; e < w.size(); ++e) EXPECT_GE(w[best], w[e]);
}

TEST(Voter, AllModesProduceFiniteLoss) {
  Rng rng(8);
  nn::CausalLm model(tiny_config(), rng);
  const data::MarkovChain domain = test_domain();
  Rng data_rng(15);
  std::vector<data::LmBatch> calib = {data::sample_lm_batch(domain, 2, 8, data_rng)};
  std::vector<data::LmBatch> eval = {data::sample_lm_batch(domain, 2, 8, data_rng)};

  for (auto mode : {VotingMode::kBestSingle, VotingMode::kMajority,
                    VotingMode::kCalibratedWeight, VotingMode::kEntropyAdaptive}) {
    ExitVoter voter(model, {mode, 0.5f});
    voter.calibrate(calib);
    const float l = voter.voted_loss(eval);
    EXPECT_TRUE(std::isfinite(l)) << static_cast<int>(mode);
    EXPECT_GT(l, 0.0f);
  }
}

TEST(Voter, ProbabilisticVoteLogitsAreLogProbs) {
  Rng rng(9);
  nn::CausalLm model(tiny_config(), rng);
  ExitVoter voter(model, {VotingMode::kCalibratedWeight, 0.5f});
  std::vector<int64_t> toks = {1, 2, 3, 4};
  const Tensor lp = voter.vote_logits(toks, 1, 4);
  for (int64_t r = 0; r < 4; ++r) {
    double s = 0.0;
    for (int64_t v = 0; v < model.config().vocab; ++v) {
      s += std::exp(lp[r * model.config().vocab + v]);
    }
    EXPECT_NEAR(s, 1.0, 1e-3);
  }
}

TEST(Voter, BestSingleMatchesThatExitsLoss) {
  Rng rng(10);
  nn::CausalLm model(tiny_config(), rng);
  const data::MarkovChain domain = test_domain();
  Rng data_rng(16);
  std::vector<data::LmBatch> calib = {data::sample_lm_batch(domain, 2, 8, data_rng)};
  std::vector<data::LmBatch> eval = {data::sample_lm_batch(domain, 2, 8, data_rng)};

  ExitVoter voter(model, {VotingMode::kBestSingle, 0.5f});
  voter.calibrate(calib);
  const auto& losses = voter.calib_losses();
  const size_t best = static_cast<size_t>(
      std::min_element(losses.begin(), losses.end()) - losses.begin());
  const float direct = data::lm_loss(model, eval, model.exit_layers()[best]);
  EXPECT_NEAR(voter.voted_loss(eval), direct, 1e-4f);
}

}  // namespace
}  // namespace edgellm::core
