// Behavioural tests for NN modules: caching discipline, optimizers, LoRA,
// losses, compression wiring.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/embedding.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/lora.hpp"
#include "nn/mlp.hpp"
#include "nn/optim.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace edgellm::nn {
namespace {

TEST(Linear, ShapesAndBias) {
  Rng rng(1);
  Linear lin("lin", 3, 5, /*bias=*/true, rng);
  const Tensor y = lin.forward(Tensor({2, 4, 3}, 0.0f));
  EXPECT_EQ(y.shape(), (Shape{2, 4, 5}));
  // Zero input -> output equals bias on every row.
  for (int64_t r = 0; r < 8; ++r) {
    for (int64_t j = 0; j < 5; ++j) EXPECT_FLOAT_EQ(y[r * 5 + j], lin.bias().value[j]);
  }
}

TEST(Linear, FeatureMismatchThrows) {
  Rng rng(1);
  Linear lin("lin", 3, 5, false, rng);
  EXPECT_THROW(lin.forward(Tensor({2, 4})), std::invalid_argument);
}

TEST(Linear, NoCacheWhenGradDisabled) {
  Rng rng(2);
  Linear lin("lin", 4, 4, false, rng);
  lin.set_grad_enabled(false);
  (void)lin.forward(Tensor({2, 4}, 1.0f));
  EXPECT_EQ(lin.cached_activation_bytes(), 0);
  EXPECT_THROW(lin.backward(Tensor({2, 4}, 1.0f)), std::invalid_argument);

  lin.set_grad_enabled(true);
  (void)lin.forward(Tensor({2, 4}, 1.0f));
  EXPECT_GT(lin.cached_activation_bytes(), 0);
  lin.clear_cache();
  EXPECT_EQ(lin.cached_activation_bytes(), 0);
}

TEST(Linear, EffectiveWeightAppliesMaskThenQuant) {
  Rng rng(3);
  Linear lin("lin", 8, 8, false, rng);
  prune::PruneSpec p;
  p.sparsity = 0.5f;
  lin.set_prune(p);
  quant::QuantSpec q;
  q.bits = 4;
  lin.set_quant(q);
  const Tensor eff = lin.effective_weight();
  const Tensor& mask = *lin.prune_mask();
  for (int64_t i = 0; i < eff.numel(); ++i) {
    if (mask[i] == 0.0f) {
      EXPECT_FLOAT_EQ(eff[i], 0.0f);
    }
  }
  lin.clear_compression();
  EXPECT_TRUE(lin.effective_weight().equals(lin.weight().value));
}

TEST(Linear, StorageBytesShrinkWithCompression) {
  Rng rng(4);
  Linear lin("lin", 32, 32, false, rng);
  const double fp16 = lin.weight_storage_bytes();
  quant::QuantSpec q;
  q.bits = 4;
  lin.set_quant(q);
  const double q4 = lin.weight_storage_bytes();
  // The sparse format pays one index byte per kept value, so sparsity only
  // wins storage once it is high enough (compute savings are separate).
  prune::PruneSpec p;
  p.sparsity = 0.8f;
  lin.set_prune(p);
  const double q4p = lin.weight_storage_bytes();
  EXPECT_LT(q4, fp16);
  EXPECT_LT(q4p, q4);
}

TEST(Embedding, LookupAndScatterGrad) {
  Rng rng(5);
  Embedding emb("emb", 10, 4, rng);
  const std::vector<int64_t> toks = {3, 3, 7};
  const Tensor out = emb.forward(toks);
  EXPECT_EQ(out.shape(), (Shape{3, 4}));
  for (int64_t d = 0; d < 4; ++d) {
    EXPECT_FLOAT_EQ(out.at(0, d), emb.weight().value.at(3, d));
    EXPECT_FLOAT_EQ(out.at(2, d), emb.weight().value.at(7, d));
  }
  Tensor g({3, 4}, 1.0f);
  emb.backward(g);
  for (int64_t d = 0; d < 4; ++d) {
    EXPECT_FLOAT_EQ(emb.weight().grad.at(3, d), 2.0f);  // two lookups of token 3
    EXPECT_FLOAT_EQ(emb.weight().grad.at(7, d), 1.0f);
    EXPECT_FLOAT_EQ(emb.weight().grad.at(0, d), 0.0f);
  }
  EXPECT_THROW(emb.forward({11}), std::invalid_argument);
}

TEST(Loss, MatchesManualComputation) {
  Tensor logits({2, 3}, std::vector<float>{1.0f, 2.0f, 3.0f, 0.0f, 0.0f, 0.0f});
  const std::vector<int64_t> targets = {2, 1};
  const float loss = cross_entropy_loss_only(logits, targets);
  const float l0 = -std::log(std::exp(3.0f) / (std::exp(1.0f) + std::exp(2.0f) + std::exp(3.0f)));
  const float l1 = -std::log(1.0f / 3.0f);
  EXPECT_NEAR(loss, (l0 + l1) / 2.0f, 1e-5f);
}

TEST(Loss, AllIgnoredThrows) {
  Tensor logits({2, 3}, 0.0f);
  EXPECT_THROW(cross_entropy_loss_only(logits, {kIgnoreIndex, kIgnoreIndex}),
               std::invalid_argument);
  EXPECT_THROW(cross_entropy_loss_only(logits, {0}), std::invalid_argument);
  EXPECT_THROW(cross_entropy_loss_only(logits, {0, 3}), std::invalid_argument);
}

TEST(Optim, SgdConvergesOnQuadratic) {
  // min (w - 3)^2 via explicit gradient.
  Param w("w", Tensor::from_values({0.0f}));
  Sgd opt({&w}, {.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.0f});
  for (int i = 0; i < 100; ++i) {
    w.zero_grad();
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-3f);
}

TEST(Optim, SgdMomentumStateBytes) {
  Param w("w", Tensor({8}));
  Sgd opt({&w}, {.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f});
  EXPECT_EQ(opt.state_bytes(), 0);
  w.grad.fill(1.0f);
  opt.step();
  EXPECT_EQ(opt.state_bytes(), 8 * 4);
}

TEST(Optim, AdamWConvergesOnQuadratic) {
  Param w("w", Tensor::from_values({0.0f}));
  AdamW opt({&w}, {.lr = 0.1f});
  for (int i = 0; i < 200; ++i) {
    w.zero_grad();
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-2f);
}

TEST(Optim, FrozenParamsSkipped) {
  Param w("w", Tensor::from_values({1.0f}));
  w.trainable = false;
  AdamW opt({&w}, {.lr = 0.1f});
  w.grad[0] = 5.0f;
  opt.step();
  EXPECT_FLOAT_EQ(w.value[0], 1.0f);
  EXPECT_EQ(opt.state_bytes(), 0);
}

TEST(Optim, StateAllocatedLazilyPerParam) {
  Param a("a", Tensor({4})), b("b", Tensor({4}));
  AdamW opt({&a}, {.lr = 0.1f});
  a.grad.fill(1.0f);
  opt.step();
  const int64_t one = opt.state_bytes();
  EXPECT_EQ(one, 4 * 4 * 2);
  // Re-scoping to {b} keeps a's state (moments survive window revisits).
  opt.set_params({&b});
  b.grad.fill(1.0f);
  opt.step();
  EXPECT_EQ(opt.state_bytes(), 2 * one);
}

TEST(Optim, ClipGradNorm) {
  Param w("w", Tensor({4}));
  w.grad.fill(3.0f);  // norm = 6
  const float pre = clip_grad_norm({&w}, 3.0f);
  EXPECT_NEAR(pre, 6.0f, 1e-5f);
  float norm = 0.0f;
  for (int i = 0; i < 4; ++i) norm += w.grad[i] * w.grad[i];
  EXPECT_NEAR(std::sqrt(norm), 3.0f, 1e-4f);

  // Below the threshold nothing changes.
  w.grad.fill(0.1f);
  clip_grad_norm({&w}, 3.0f);
  EXPECT_FLOAT_EQ(w.grad[0], 0.1f);
}

TEST(Lora, ZeroInitIsNoOp) {
  Rng rng(6);
  Linear lin("lin", 6, 6, false, rng);
  const Tensor x = randn({2, 6}, rng);
  lin.set_grad_enabled(false);
  const Tensor before = lin.forward(x);
  lin.enable_lora(2, 8.0f, rng);
  const Tensor after = lin.forward(x);
  EXPECT_TRUE(before.allclose(after, 1e-6f));
}

TEST(Lora, ModelLevelFreezing) {
  Rng rng(7);
  nn::ModelConfig cfg = edgellm::testing::tiny_config();
  CausalLm model(cfg, rng);
  const int64_t base_params = model.param_count();
  enable_lora_tuning(model, 2, 4.0f, rng);
  EXPECT_GT(model.param_count(), base_params);

  int64_t trainable = 0;
  for (Param* p : model.params()) {
    if (p->trainable) trainable += p->numel();
  }
  // Only adapters + exit norms/heads are trainable, far fewer than base.
  EXPECT_LT(trainable, base_params / 2);
  for (Param* p : model.params()) {
    if (p->name.find("block") == 0 && p->name.find("lora") == std::string::npos) {
      EXPECT_FALSE(p->trainable) << p->name;
    }
  }
  disable_lora_tuning(model);
  EXPECT_EQ(model.param_count(), base_params);
  for (Param* p : model.params()) EXPECT_TRUE(p->trainable);
}

TEST(Mlp, CacheAccounting) {
  Rng rng(8);
  Mlp mlp("mlp", 4, 8, rng);
  (void)mlp.forward(Tensor({2, 4}, 1.0f));
  // fc1 input 2*4, pre-act 2*8, fc2 input 2*8 floats.
  EXPECT_EQ(mlp.cached_activation_bytes(), (8 + 16 + 16) * 4);
  mlp.clear_cache();
  EXPECT_EQ(mlp.cached_activation_bytes(), 0);
}

}  // namespace
}  // namespace edgellm::nn
