// The blocked GEMM kernel family and its autotuning stack: bitwise
// equivalence of blocked vs naive kernels on tile-boundary edge shapes,
// thread-count determinism of the dispatched ops, NaN/Inf propagation,
// bit-exactness of the blocked packed integer kernel against the scalar
// reference, the per-shape schedule registry, the persistent ScheduleCache,
// and the MeasuredBackend autotuner. Run alone with `ctest -L gemm`.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <vector>

#include "hw/measured.hpp"
#include "nn/decoder.hpp"
#include "obs/metrics.hpp"
#include "quant/packed.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/parallel.hpp"
#include "test_util.hpp"

namespace edgellm {
namespace {

using edgellm::testing::tiny_config;
namespace gemm = ops::gemm;

Tensor rand_tensor(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  for (auto& v : t.data()) v = rng.uniform(-1.0f, 1.0f);
  return t;
}

// Bit-pattern comparison: NaN-safe, distinguishes -0.0f from 0.0f.
void expect_bitwise_equal(const Tensor& got, const Tensor& want, const std::string& what) {
  ASSERT_EQ(got.numel(), want.numel()) << what;
  for (int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(std::bit_cast<uint32_t>(got.data()[i]), std::bit_cast<uint32_t>(want.data()[i]))
        << what << " element " << i << ": got " << got.data()[i] << " want " << want.data()[i];
  }
}

// Shapes chosen to stress every tile boundary: single elements/rows/cols,
// dims not divisible by kMr (4), kNr (8), or any kc/nc candidate, and a
// couple of shapes larger than one cache block in each dimension.
struct Mkn {
  int64_t m, k, n;
};
const std::vector<Mkn> kEdgeShapes = {
    {1, 1, 1},  {1, 1, 8},    {3, 5, 8},     {4, 7, 9},    {5, 16, 8},
    {13, 17, 23}, {64, 64, 64}, {7, 300, 40}, {65, 257, 129}, {9, 31, 8},
};
const std::vector<gemm::Blocking> kBlockings = {
    gemm::Blocking{},            // default 64x256x128
    gemm::Blocking{4, 3, 8},     // smallest valid tiles: maximal boundary count
    gemm::Blocking{32, 16, 24},  // nc not a multiple of kNr-squared strips
};

// --- Blocked vs naive: dense kernels ----------------------------------------

TEST(GemmBlocked, MatmulMatchesNaiveBitwiseOnEdgeShapes) {
  Rng rng(11);
  for (const Mkn& s : kEdgeShapes) {
    const Tensor a = rand_tensor({s.m, s.k}, rng);
    const Tensor b = rand_tensor({s.k, s.n}, rng);
    const Tensor want = gemm::matmul_naive(a, b);
    for (const gemm::Blocking& blk : kBlockings) {
      expect_bitwise_equal(gemm::matmul_blocked(a, b, blk), want,
                           "matmul " + std::to_string(s.m) + "x" + std::to_string(s.k) + "x" +
                               std::to_string(s.n) + " " + blk.to_string());
    }
  }
}

TEST(GemmBlocked, MatmulNtMatchesNaiveBitwiseOnEdgeShapes) {
  Rng rng(12);
  for (const Mkn& s : kEdgeShapes) {
    const Tensor a = rand_tensor({s.m, s.k}, rng);
    const Tensor b = rand_tensor({s.n, s.k}, rng);
    const Tensor want = gemm::matmul_nt_naive(a, b);
    for (const gemm::Blocking& blk : kBlockings) {
      expect_bitwise_equal(gemm::matmul_nt_blocked(a, b, blk), want,
                           "matmul_nt " + std::to_string(s.m) + "x" + std::to_string(s.k) + "x" +
                               std::to_string(s.n) + " " + blk.to_string());
    }
  }
}

TEST(GemmBlocked, BmmNtMatchesNaiveBitwise) {
  Rng rng(13);
  for (const Mkn& s : {Mkn{5, 17, 9}, Mkn{4, 8, 8}, Mkn{13, 31, 23}}) {
    const Tensor a = rand_tensor({3, s.m, s.k}, rng);
    const Tensor b = rand_tensor({3, s.n, s.k}, rng);
    const Tensor want = gemm::bmm_nt_naive(a, b);
    for (const gemm::Blocking& blk : kBlockings) {
      expect_bitwise_equal(gemm::bmm_nt_blocked(a, b, blk), want, "bmm_nt " + blk.to_string());
    }
  }
}

// --- Dispatch: thread-count determinism -------------------------------------

// The shapes below clear use_blocked (m*k*n >= 32768, n >= kNr), so
// ops::matmul / matmul_nt / bmm_nt take the blocked path — which must give
// the same bits at any thread count, and the same bits as the naive kernels.
TEST(GemmDispatch, OpsAreBitwiseDeterministicAcrossThreadCounts) {
  Rng rng(21);
  const Tensor a = rand_tensor({40, 36}, rng);
  const Tensor b = rand_tensor({36, 48}, rng);
  const Tensor bt = rand_tensor({48, 36}, rng);
  const Tensor ba = rand_tensor({2, 40, 36}, rng);
  const Tensor bb = rand_tensor({2, 48, 36}, rng);
  ASSERT_TRUE(gemm::use_blocked(gemm::GemmKind::kNN, 40, 36, 48));

  Tensor nn1, nt1, bm1;
  {
    parallel::NumThreadsScope scope(1);
    nn1 = ops::matmul(a, b);
    nt1 = ops::matmul_nt(a, bt);
    bm1 = ops::bmm_nt(ba, bb);
  }
  expect_bitwise_equal(nn1, gemm::matmul_naive(a, b), "dispatched matmul vs naive");
  expect_bitwise_equal(nt1, gemm::matmul_nt_naive(a, bt), "dispatched matmul_nt vs naive");
  expect_bitwise_equal(bm1, gemm::bmm_nt_naive(ba, bb), "dispatched bmm_nt vs naive");
  for (int64_t threads : {2, 8}) {
    parallel::NumThreadsScope scope(threads);
    expect_bitwise_equal(ops::matmul(a, b), nn1, "matmul @" + std::to_string(threads));
    expect_bitwise_equal(ops::matmul_nt(a, bt), nt1, "matmul_nt @" + std::to_string(threads));
    expect_bitwise_equal(ops::bmm_nt(ba, bb), bm1, "bmm_nt @" + std::to_string(threads));
  }
}

// --- NaN/Inf propagation on the blocked path --------------------------------

TEST(GemmBlocked, NanAndInfPropagateThroughBlockedKernels) {
  Rng rng(31);
  const int64_t m = 32, k = 32, n = 40;  // m*k*n = 40960: blocked dispatch
  ASSERT_TRUE(gemm::use_blocked(gemm::GemmKind::kNT, m, k, n));
  Tensor a = rand_tensor({m, k}, rng);
  Tensor bt = rand_tensor({n, k}, rng);
  a.at(3, 5) = std::numeric_limits<float>::quiet_NaN();    // poisons row 3
  bt.at(7, 11) = std::numeric_limits<float>::infinity();   // saturates col 7

  const Tensor c = ops::matmul_nt(a, bt);
  expect_bitwise_equal(c, gemm::matmul_nt_naive(a, bt), "NaN/Inf blocked vs naive");
  for (int64_t j = 0; j < n; ++j) EXPECT_TRUE(std::isnan(c.at(3, j))) << "row 3 col " << j;
  for (int64_t i = 0; i < m; ++i) {
    if (i == 3) continue;
    EXPECT_FALSE(std::isfinite(c.at(i, 7))) << "col 7 row " << i;
  }
  EXPECT_TRUE(std::isfinite(c.at(0, 0)));
}

// --- Packed integer kernel ---------------------------------------------------

TEST(PackedGemm, BlockedMatchesScalarRefBitwise) {
  Rng rng(41);
  // Odd column counts exercise int4 nibble alignment inside decode panels.
  for (const Mkn& s : {Mkn{1, 7, 8}, Mkn{3, 9, 8}, Mkn{5, 65, 9}, Mkn{8, 129, 33},
                       Mkn{13, 48, 24}, Mkn{2, 1, 8}}) {
    const Tensor x = rand_tensor({s.m, s.k}, rng);
    const Tensor w = rand_tensor({s.n, s.k}, rng);
    for (int bits : {4, 8}) {
      const quant::PackedMatrix p = quant::PackedMatrix::pack(w, bits);
      const Tensor want = quant::packed_matmul_nt_ref(x, p);
      for (const gemm::Blocking& blk : kBlockings) {
        expect_bitwise_equal(quant::packed_matmul_nt_blocked(x, p, blk), want,
                             "packed b" + std::to_string(bits) + " " + blk.to_string());
      }
      // The dispatching entry point must agree whichever path it picks.
      expect_bitwise_equal(quant::packed_matmul_nt(x, p), want,
                           "packed dispatch b" + std::to_string(bits));
    }
  }
}

TEST(PackedGemm, DispatchIsThreadCountDeterministic) {
  Rng rng(42);
  const Tensor x = rand_tensor({8, 96}, rng);
  const Tensor w = rand_tensor({32, 96}, rng);
  ASSERT_TRUE(gemm::use_blocked(gemm::GemmKind::kPackedNT, 8, 96, 32));
  const quant::PackedMatrix p = quant::PackedMatrix::pack(w, 4);
  Tensor y1;
  {
    parallel::NumThreadsScope scope(1);
    y1 = quant::packed_matmul_nt(x, p);
  }
  expect_bitwise_equal(y1, quant::packed_matmul_nt_ref(x, p), "packed vs ref");
  for (int64_t threads : {2, 8}) {
    parallel::NumThreadsScope scope(threads);
    expect_bitwise_equal(quant::packed_matmul_nt(x, p), y1,
                         "packed @" + std::to_string(threads));
  }
}

TEST(PackedGemm, DecodeRowMatchesValueAt) {
  Rng rng(43);
  for (int64_t cols : {7, 8, 9, 65}) {  // odd counts stress int4 tail nibble
    const Tensor w = rand_tensor({5, cols}, rng);
    for (int bits : {4, 8}) {
      const quant::PackedMatrix p = quant::PackedMatrix::pack(w, bits);
      std::vector<float> row(static_cast<size_t>(cols));
      std::vector<int8_t> q(static_cast<size_t>(cols));
      for (int64_t r = 0; r < p.rows(); ++r) {
        p.decode_row(r, row.data());
        for (int64_t c = 0; c < cols; ++c) {
          ASSERT_EQ(row[static_cast<size_t>(c)], p.value_at(r, c) * p.row_scale(r))
              << "bits " << bits << " r " << r << " c " << c;
        }
        // Ranges starting at odd offsets hit the high-nibble-first path.
        for (int64_t c0 : {int64_t{0}, int64_t{1}, int64_t{3}}) {
          if (c0 >= cols) continue;
          p.decode_row_range_q(r, c0, cols, q.data());
          for (int64_t c = c0; c < cols; ++c) {
            ASSERT_EQ(static_cast<int32_t>(q[static_cast<size_t>(c - c0)]), p.value_at(r, c))
                << "bits " << bits << " r " << r << " c0 " << c0 << " c " << c;
          }
          // The strided panel-scatter primitive decodes the same integers
          // (as unscaled floats) at any stride.
          for (int64_t stride : {int64_t{1}, int64_t{3}}) {
            std::vector<float> f(static_cast<size_t>((cols - c0) * stride), -1.0f);
            p.decode_row_range_unscaled(r, c0, cols, f.data(), stride);
            for (int64_t c = c0; c < cols; ++c) {
              ASSERT_EQ(f[static_cast<size_t>((c - c0) * stride)],
                        static_cast<float>(p.value_at(r, c)))
                  << "bits " << bits << " r " << r << " c0 " << c0 << " stride " << stride;
            }
          }
        }
      }
      // dequantize() is built on decode_row and must match it exactly.
      const Tensor d = p.dequantize();
      for (int64_t r = 0; r < p.rows(); ++r) {
        p.decode_row(r, row.data());
        for (int64_t c = 0; c < cols; ++c) {
          ASSERT_EQ(d.at(r, c), row[static_cast<size_t>(c)]);
        }
      }
    }
  }
}

// --- Schedule registry -------------------------------------------------------

TEST(GemmRegistry, SetFindClearBlockings) {
  gemm::clear_blockings();
  EXPECT_EQ(gemm::registered_blockings(), 0);
  EXPECT_FALSE(gemm::has_blocking(gemm::GemmKind::kNT, 8, 64, 32));
  const gemm::Blocking def = gemm::blocking_for(gemm::GemmKind::kNT, 8, 64, 32);
  EXPECT_TRUE(def.valid());

  const gemm::Blocking mine{16, 32, 48};
  gemm::set_blocking(gemm::GemmKind::kNT, 8, 64, 32, mine);
  EXPECT_TRUE(gemm::has_blocking(gemm::GemmKind::kNT, 8, 64, 32));
  EXPECT_EQ(gemm::registered_blockings(), 1);
  EXPECT_TRUE(gemm::blocking_for(gemm::GemmKind::kNT, 8, 64, 32) == mine);
  // Other kinds and shapes are unaffected.
  EXPECT_FALSE(gemm::has_blocking(gemm::GemmKind::kNN, 8, 64, 32));
  EXPECT_FALSE(gemm::has_blocking(gemm::GemmKind::kNT, 8, 64, 33));

  EXPECT_THROW(gemm::set_blocking(gemm::GemmKind::kNT, 8, 64, 32, gemm::Blocking{1, 0, 2}),
               std::invalid_argument);
  gemm::clear_blockings();
  EXPECT_EQ(gemm::registered_blockings(), 0);
}

TEST(GemmRegistry, UseBlockedPolicy) {
  using gemm::GemmKind;
  EXPECT_FALSE(gemm::use_blocked(GemmKind::kNN, 4, 4, 4));          // tiny
  EXPECT_FALSE(gemm::use_blocked(GemmKind::kNT, 1024, 1024, 4));    // n < kNr
  EXPECT_TRUE(gemm::use_blocked(GemmKind::kNN, 32, 32, 40));
  EXPECT_TRUE(gemm::use_blocked(GemmKind::kNT, 32, 32, 40));
  // The packed kernel replaces a much slower scalar reference, so its
  // threshold is far lower than the dense one.
  EXPECT_TRUE(gemm::use_blocked(GemmKind::kPackedNT, 8, 64, 8));
  EXPECT_FALSE(gemm::use_blocked(GemmKind::kPackedNT, 1, 8, 8));
}

TEST(GemmMetrics, BlockedCallsAreCounted) {
  Rng rng(51);
  obs::Registry reg;
  gemm::set_metrics_registry(&reg);
  const Tensor a = rand_tensor({32, 32}, rng);
  const Tensor bt = rand_tensor({40, 32}, rng);
  (void)ops::matmul_nt(a, bt);  // clears use_blocked: 32*32*40 = 40960
  gemm::set_metrics_registry(nullptr);
  EXPECT_GE(reg.counter("gemm/blocked_calls").value(), 1);
}

// --- ScheduleCache persistence ----------------------------------------------

TEST(ScheduleCache, PutFindRoundTripWithCounters) {
  hw::ScheduleCache cache;
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.find("absent").has_value());
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 0);

  hw::ScheduleRecord rec;
  rec.backend = "measured";
  rec.schedule.tile_m = 32;
  rec.schedule.tile_k = 64;
  rec.schedule.tile_n = 48;
  rec.metric = 0.25;
  rec.baseline = 1.5;
  cache.put("key one", rec);
  const auto got = cache.find("key one");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(got->backend, "measured");
  EXPECT_TRUE(got->blocking() == (gemm::Blocking{32, 64, 48}));
  EXPECT_DOUBLE_EQ(got->metric, 0.25);
  EXPECT_DOUBLE_EQ(got->baseline, 1.5);
}

TEST(ScheduleCache, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/edgellm_gemm_cache.txt";
  hw::ScheduleCache cache;
  hw::ScheduleRecord sim;
  sim.backend = "sim";
  sim.schedule.tile_m = 16;
  sim.schedule.tile_n = 32;
  sim.schedule.tile_k = 8;
  sim.schedule.double_buffer = true;
  sim.schedule.pin_weights = true;
  sim.metric = 1234.0;
  cache.put("sim|k1", sim);
  hw::ScheduleRecord meas;
  meas.backend = "measured";
  meas.schedule.tile_m = 64;
  meas.schedule.tile_k = 128;
  meas.schedule.tile_n = 64;
  meas.metric = 0.125;
  meas.baseline = 0.5;
  cache.put("measured|k2", meas);
  ASSERT_TRUE(cache.save(path));

  hw::ScheduleCache loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.size(), 2);
  const auto s = loaded.find("sim|k1");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->backend, "sim");
  EXPECT_EQ(s->schedule.tile_m, 16);
  EXPECT_TRUE(s->schedule.double_buffer);
  EXPECT_TRUE(s->schedule.pin_weights);
  const auto m = loaded.find("measured|k2");
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->blocking() == (gemm::Blocking{64, 128, 64}));
  EXPECT_DOUBLE_EQ(m->baseline, 0.5);
  std::remove(path.c_str());
}

TEST(ScheduleCache, RejectsMissingAndMalformedFiles) {
  hw::ScheduleCache cache;
  hw::ScheduleRecord rec;
  rec.backend = "sim";
  cache.put("keep", rec);

  EXPECT_FALSE(cache.load(::testing::TempDir() + "/edgellm_gemm_nonexistent.txt"));
  EXPECT_EQ(cache.size(), 1);  // contents untouched

  const std::string bad = ::testing::TempDir() + "/edgellm_gemm_bad_cache.txt";
  {
    std::ofstream out(bad);
    out << "not-a-schedule-cache v9\n";
  }
  EXPECT_FALSE(cache.load(bad));  // wrong version header
  {
    std::ofstream out(bad);
    out << "edgellm-schedule-cache v1\n";
    out << "key\tmeasured\tgarbage fields here\n";
  }
  EXPECT_FALSE(cache.load(bad));  // malformed record line
  EXPECT_EQ(cache.size(), 1);
  ASSERT_TRUE(cache.find("keep").has_value());
  std::remove(bad.c_str());
}

// --- Memoised analytical search ---------------------------------------------

TEST(ScheduleCache, SearchGemmCachedHitsOnSecondCall) {
  const hw::DeviceModel dev = hw::default_edge_device();
  hw::GemmWorkload g;
  g.name = "t.qkv";
  g.m = 64;
  g.n = 64;
  g.k = 64;
  const hw::SearchConfig cfg;
  hw::ScheduleCache cache;

  const hw::GemmPlan first =
      hw::search_gemm_cached(dev, g, dev.sram_bytes, cfg, /*pinned=*/false, &cache);
  ASSERT_TRUE(first.cost.feasible);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.size(), 1);

  const hw::GemmPlan second =
      hw::search_gemm_cached(dev, g, dev.sram_bytes, cfg, /*pinned=*/false, &cache);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_TRUE(second.schedule.tile_m == first.schedule.tile_m &&
              second.schedule.tile_n == first.schedule.tile_n &&
              second.schedule.tile_k == first.schedule.tile_k);
  EXPECT_DOUBLE_EQ(second.cost.cycles, first.cost.cycles);

  // A pinned search is a distinct key, not a false hit.
  (void)hw::search_gemm_cached(dev, g, dev.sram_bytes, cfg, /*pinned=*/true, &cache);
  EXPECT_EQ(cache.misses(), 2);
}

// --- Measured autotuner ------------------------------------------------------

hw::MeasuredConfig fast_tune_config() {
  hw::MeasuredConfig cfg;
  cfg.mc_candidates = {8, 16};
  cfg.kc_candidates = {16};
  cfg.nc_candidates = {8, 16};
  cfg.reps = 1;
  return cfg;
}

TEST(MeasuredBackend, TuneReturnsValidBlockingAndCaches) {
  hw::ScheduleCache cache;
  hw::MeasuredBackend backend(fast_tune_config(), &cache);

  const hw::TuneResult r = backend.tune(gemm::GemmKind::kNT, 8, 32, 16);
  EXPECT_TRUE(r.blocking.valid());
  EXPECT_GT(r.best_ms, 0.0);
  EXPECT_GT(r.baseline_ms, 0.0);
  EXPECT_FALSE(r.from_cache);
  EXPECT_EQ(cache.size(), 1);

  const hw::TuneResult warm = backend.tune(gemm::GemmKind::kNT, 8, 32, 16);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_TRUE(warm.blocking == r.blocking);

  // Packed tuning exercises the int4 kernel and its dequantize baseline.
  const hw::TuneResult pr = backend.tune(gemm::GemmKind::kPackedNT, 8, 32, 16, /*bits=*/4);
  EXPECT_TRUE(pr.blocking.valid());
  EXPECT_FALSE(pr.from_cache);
  EXPECT_EQ(cache.size(), 2);
}

TEST(MeasuredBackend, TuneAndInstallRegistersBlocking) {
  gemm::clear_blockings();
  hw::MeasuredBackend backend(fast_tune_config(), nullptr);
  const hw::TuneResult r = backend.tune_and_install(gemm::GemmKind::kNT, 8, 48, 16);
  EXPECT_TRUE(gemm::has_blocking(gemm::GemmKind::kNT, 8, 48, 16));
  EXPECT_TRUE(gemm::blocking_for(gemm::GemmKind::kNT, 8, 48, 16) == r.blocking);
  gemm::clear_blockings();
}

TEST(MeasuredBackend, AutotuneModelGemmsIsWarmOnSecondRun) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(61);
  nn::CausalLm model(cfg, rng);
  quant::QuantSpec q;
  q.bits = 8;
  model.blocks()[0]->set_compression(q, std::nullopt);
  model.set_eval();

  gemm::clear_blockings();
  hw::ScheduleCache cache;
  hw::MeasuredBackend backend(fast_tune_config(), &cache);
  // batch_rows = 128 lifts the tiny model's shapes over the use_blocked
  // thresholds (128 * 16 * 16 = 32768).
  const hw::ModelTuneSummary cold = hw::autotune_model_gemms(backend, model, 128);
  EXPECT_GT(cold.shapes_tuned, 0);
  EXPECT_EQ(cold.cache_hits, 0);
  EXPECT_EQ(gemm::registered_blockings(), cold.shapes_tuned);

  const hw::ModelTuneSummary warm = hw::autotune_model_gemms(backend, model, 128);
  EXPECT_EQ(warm.shapes_tuned, cold.shapes_tuned);
  EXPECT_EQ(warm.cache_hits, warm.shapes_tuned);
  gemm::clear_blockings();
}

// --- Packed weights in the decode weight cache ------------------------------

TEST(PackedWeightCache, PackedBuildSwapsPackableLayersAndStaysClose) {
  const nn::ModelConfig cfg = tiny_config();
  Rng rng(71);
  nn::CausalLm model(cfg, rng);
  quant::QuantSpec q;
  q.bits = 8;
  model.blocks()[0]->set_compression(q, std::nullopt);
  Rng lrng(5);
  model.blocks()[1]->attention().q_proj().enable_lora(2, 4.0f, lrng);
  model.set_eval();

  const nn::Linear& quantized = model.blocks()[0]->attention().q_proj();
  const nn::Linear& lora = model.blocks()[1]->attention().q_proj();
  EXPECT_TRUE(quantized.packable());
  EXPECT_FALSE(lora.packable());  // LoRA layers never pack

  nn::DecodeWeightCache fp32_cache(model);
  nn::DecodeWeightCache packed_cache(model, /*pack_compressed=*/true);
  EXPECT_TRUE(packed_cache.built());
  // The quantized layer moves to packed storage; its fp32 entry disappears.
  EXPECT_NE(packed_cache.find_packed(&quantized), nullptr);
  EXPECT_EQ(packed_cache.find(&quantized), nullptr);
  EXPECT_EQ(packed_cache.find_packed(&lora), nullptr);
  EXPECT_EQ(packed_cache.find(&lora), nullptr);
  // Packed payloads are smaller than the fp32 snapshots they replace.
  EXPECT_LT(packed_cache.bytes(), fp32_cache.bytes());
  // The packed entry holds the layer's actual quantized weight.
  const quant::PackedMatrix* pw = packed_cache.find_packed(&quantized);
  EXPECT_EQ(pw->rows(), quantized.out_features());
  EXPECT_EQ(pw->cols(), quantized.in_features());
  EXPECT_EQ(pw->bits(), 8);

  // Decode through the packed cache runs deployed integer numerics: close
  // to the fp32 path (same integers, scale applied once at the end instead
  // of per weight element) but not bitwise equal.
  const std::vector<int64_t> prompt = {1, 5, 9, 2};
  nn::KvCache plain(cfg.n_layers, cfg.kv_dim(), false);
  nn::KvCache packed(cfg.n_layers, cfg.kv_dim(), false);
  for (size_t t = 0; t < prompt.size(); ++t) {
    nn::BatchedSeq a;
    a.cache = &plain;
    a.position = static_cast<int64_t>(t);
    a.token = prompt[t];
    a.all_exits = true;
    nn::BatchedSeq b = a;
    b.cache = &packed;
    nn::batched_decode_step(model, std::span<nn::BatchedSeq>(&a, 1), &fp32_cache);
    nn::batched_decode_step(model, std::span<nn::BatchedSeq>(&b, 1), &packed_cache);
    ASSERT_EQ(a.logits.size(), b.logits.size());
    for (size_t e = 0; e < a.logits.size(); ++e) {
      for (int64_t v = 0; v < a.logits[e].numel(); ++v) {
        ASSERT_NEAR(a.logits[e][v], b.logits[e][v], 5e-3f)
            << "pos " << t << " exit " << e << " v " << v;
      }
    }
  }
}

}  // namespace
}  // namespace edgellm
