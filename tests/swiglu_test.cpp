// SwiGLU MLP variant: gradient-checked, integrated through the model, the
// simulator and serialization.
#include <gtest/gtest.h>

#include "core/tuner.hpp"
#include "data/eval.hpp"
#include "hw/workload.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "runtime/simulator.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace edgellm::nn {
namespace {

ModelConfig swiglu_config() {
  ModelConfig cfg = edgellm::testing::tiny_config();
  cfg.swiglu = true;
  return cfg;
}

float weighted_sum(const Tensor& y, const Tensor& w) {
  float l = 0.0f;
  for (int64_t i = 0; i < y.numel(); ++i) l += y[i] * w[i];
  return l;
}

TEST(SwiGlu, HasThreeBiaslessLinears) {
  Rng rng(1);
  Mlp mlp("m", 8, 16, rng, MlpKind::kSwiGlu);
  EXPECT_EQ(mlp.linears().size(), 3u);
  for (Linear* lin : mlp.linears()) EXPECT_FALSE(lin->has_bias());
  Rng rng2(1);
  Mlp gelu("g", 8, 16, rng2, MlpKind::kGelu);
  EXPECT_EQ(gelu.linears().size(), 2u);
}

TEST(SwiGlu, ForwardMatchesManualComputation) {
  Rng rng(2);
  Mlp mlp("m", 4, 6, rng, MlpKind::kSwiGlu);
  mlp.set_grad_enabled(false);
  const Tensor x = randn({3, 4}, rng);
  const Tensor g = mlp.fc1().forward(x);
  const Tensor u = mlp.fc3().forward(x);
  const Tensor expected = mlp.fc2().forward(ops::mul(ops::silu(g), u));
  EXPECT_TRUE(mlp.forward(x).allclose(expected, 1e-5f));
}

TEST(SwiGlu, GradCheckAllThreeMatricesAndInput) {
  Rng rng(3);
  Mlp mlp("m", 4, 8, rng, MlpKind::kSwiGlu);
  Tensor x = randn({3, 4}, rng);
  const Tensor w = randn({3, 4}, rng);
  auto loss_fn = [&] {
    mlp.clear_cache();
    return weighted_sum(mlp.forward(x), w);
  };
  loss_fn();
  const Tensor gx = mlp.backward(w);
  edgellm::testing::check_param_grad(mlp.fc1().weight(), loss_fn);
  edgellm::testing::check_param_grad(mlp.fc2().weight(), loss_fn);
  edgellm::testing::check_param_grad(mlp.fc3().weight(), loss_fn);

  const float h = 1e-3f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + h;
    const float lp = loss_fn();
    x[i] = orig - h;
    const float lm = loss_fn();
    x[i] = orig;
    EXPECT_NEAR(gx[i], (lp - lm) / (2 * h), 2e-2f);
  }
}

TEST(SwiGlu, ModelTrainsEndToEnd) {
  const ModelConfig cfg = swiglu_config();
  Rng rng(4);
  CausalLm model(cfg, rng);
  data::MarkovChain::Config dc;
  dc.vocab = 24;
  dc.order = 1;
  dc.branch = 3;
  dc.seed = 5;
  const data::MarkovChain domain(dc);

  core::TunerConfig t = core::TunerConfig::vanilla();
  t.optim.lr = 1e-2f;
  core::AdaptiveLayerTuner tuner(model, t, Rng(6));
  Rng drng(7);
  float first = 0, last = 0;
  for (int i = 0; i < 120; ++i) {
    const auto st = tuner.step(data::sample_lm_batch(domain, 4, 12, drng));
    if (i < 12) first += st.loss;
    if (i >= 108) last += st.loss;
  }
  EXPECT_LT(last, first * 0.9f);
}

TEST(SwiGlu, CompressionAppliesToAllSevenLinears) {
  Rng rng(5);
  CausalLm model(swiglu_config(), rng);
  quant::QuantSpec q;
  q.bits = 4;
  for (TransformerBlock* b : model.blocks()) {
    EXPECT_EQ(b->linears().size(), 7u);
    b->set_compression(q, std::nullopt);
    for (Linear* lin : b->linears()) EXPECT_EQ(lin->quant_spec()->bits, 4);
  }
}

TEST(SwiGlu, SimulatorParamAndActivationModelsMatch) {
  const ModelConfig cfg = swiglu_config();
  Rng rng(6);
  CausalLm model(cfg, rng);
  int64_t block0 = 0;
  for (Param* p : model.params()) {
    if (p->name.rfind("block0.", 0) == 0) block0 += p->numel();
  }
  EXPECT_DOUBLE_EQ(runtime::block_param_count(cfg), static_cast<double>(block0));

  const int64_t batch = 2, seq = 8;
  std::vector<int64_t> toks(static_cast<size_t>(batch * seq), 1);
  model.clear_cache();
  (void)model.forward(toks, batch, seq, {cfg.n_layers, 1, false});
  const int64_t one = model.cached_activation_bytes();
  model.clear_cache();
  (void)model.forward(toks, batch, seq, {cfg.n_layers, 2, false});
  const int64_t two = model.cached_activation_bytes();
  EXPECT_DOUBLE_EQ(runtime::block_activation_bytes(cfg, batch, seq),
                   static_cast<double>(two - one));
}

TEST(SwiGlu, WorkloadHasThreeMlpGemms) {
  const ModelConfig cfg = swiglu_config();
  const hw::LayerWorkload fwd = hw::block_forward_workload(cfg, 0, {}, 2, 8);
  int mlp_gemms = 0;
  for (const auto& g : fwd.gemms) {
    if (g.name.find(".fc") != std::string::npos) ++mlp_gemms;
  }
  EXPECT_EQ(mlp_gemms, 3);
  const hw::LayerWorkload bwd = hw::block_backward_workload(cfg, 0, {}, 2, 8);
  int mlp_bwd = 0;
  for (const auto& g : bwd.gemms) {
    if (g.name.find(".fc") != std::string::npos) ++mlp_bwd;
  }
  EXPECT_EQ(mlp_bwd, 6);  // dx + dw for each of 3
}

TEST(SwiGlu, ConfigCheckpointRoundTrip) {
  const std::string path = ::testing::TempDir() + "/edgellm_swiglu.bin";
  Rng rng(7);
  CausalLm a(swiglu_config(), rng);
  save_model_with_config(a, path);
  auto b = load_model_with_config(path);
  EXPECT_TRUE(b->config().swiglu);
  std::vector<int64_t> toks = {1, 2, 3, 4};
  EXPECT_TRUE(a.forward_eval(toks, 1, 4, 3).allclose(b->forward_eval(toks, 1, 4, 3), 1e-6f));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace edgellm::nn
