// CSR sparse kernels, the induction task, and bootstrap statistics.
#include <gtest/gtest.h>

#include "core/tuner.hpp"
#include "data/eval.hpp"
#include "data/induction.hpp"
#include "data/stats.hpp"
#include "nn/decoder.hpp"
#include "prune/prune.hpp"
#include "prune/sparse.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace edgellm {
namespace {

// ---------------------------------------------------------------------------
// CsrMatrix
// ---------------------------------------------------------------------------

TEST(Csr, DenseRoundTrip) {
  Rng rng(1);
  Tensor w = randn({8, 12}, rng);
  prune::PruneSpec spec;
  spec.sparsity = 0.6f;
  w = prune::apply_mask(w, prune::magnitude_mask(w, spec));
  const prune::CsrMatrix csr = prune::CsrMatrix::from_dense(w);
  EXPECT_TRUE(csr.to_dense().equals(w));
  EXPECT_NEAR(csr.density(), 0.4f, 0.02f);
}

// Property: SpMM equals dense matmul on the same (pruned) matrix.
class CsrGemm : public ::testing::TestWithParam<std::tuple<int, int, int, float>> {};

TEST_P(CsrGemm, MatchesDenseReference) {
  const auto [m, k, n, sparsity] = GetParam();
  Rng rng(static_cast<uint64_t>(m + k * 7 + n * 31));
  Tensor w = randn({n, k}, rng);
  if (sparsity > 0.0f) {
    prune::PruneSpec spec;
    spec.sparsity = sparsity;
    w = prune::apply_mask(w, prune::magnitude_mask(w, spec));
  }
  const Tensor x = randn({m, k}, rng);
  const prune::CsrMatrix csr = prune::CsrMatrix::from_dense(w);
  EXPECT_TRUE(csr.matmul_nt(x).allclose(ops::matmul_nt(x, w), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndSparsities, CsrGemm,
    ::testing::Values(std::make_tuple(1, 8, 8, 0.0f), std::make_tuple(4, 16, 12, 0.5f),
                      std::make_tuple(7, 33, 5, 0.9f), std::make_tuple(3, 64, 64, 0.75f)));

TEST(Csr, StorageShrinksWithSparsity) {
  Rng rng(2);
  Tensor w = randn({32, 32}, rng);
  const int64_t dense_bytes = prune::CsrMatrix::from_dense(w).storage_bytes();
  prune::PruneSpec spec;
  spec.sparsity = 0.9f;
  w = prune::apply_mask(w, prune::magnitude_mask(w, spec));
  const prune::CsrMatrix csr = prune::CsrMatrix::from_dense(w);
  EXPECT_LT(csr.storage_bytes(), dense_bytes / 4);
  EXPECT_EQ(csr.nnz(), 1024 - 921);  // floor(0.9 * 1024) = 921 entries dropped
}

TEST(Csr, RejectsBadInput) {
  EXPECT_THROW(prune::CsrMatrix::from_dense(Tensor({4})), std::invalid_argument);
  const prune::CsrMatrix csr = prune::CsrMatrix::from_dense(Tensor({2, 3}, 1.0f));
  EXPECT_THROW(csr.matmul_nt(Tensor({2, 4})), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// InductionTask
// ---------------------------------------------------------------------------

TEST(Induction, SequencesBindKeysConsistently) {
  data::InductionTask task({.n_keys = 4, .n_values = 4, .n_fillers = 2, .seed = 1});
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const auto s = task.sample(60, rng);
    std::map<int64_t, int64_t> bind;
    for (size_t i = 0; i + 1 < s.size(); ++i) {
      if (task.is_key(s[i]) && task.is_value(s[i + 1])) {
        const auto [it, inserted] = bind.try_emplace(s[i], s[i + 1]);
        if (!inserted) EXPECT_EQ(it->second, s[i + 1]) << "key rebound mid-sequence";
      }
    }
    EXPECT_GE(bind.size(), 1u);
  }
}

TEST(Induction, OracleScoresPerfect) {
  data::InductionTask task({});
  Rng rng(4);
  // An oracle that tracks bindings in the prefix is exactly correct.
  auto oracle = [&task](const std::vector<int64_t>& prefix) -> int64_t {
    std::map<int64_t, int64_t> bind;
    for (size_t i = 0; i + 1 < prefix.size(); ++i) {
      if (task.is_key(prefix[i]) && task.is_value(prefix[i + 1])) {
        bind.try_emplace(prefix[i], prefix[i + 1]);
      }
    }
    const auto it = bind.find(prefix.back());
    return it != bind.end() ? it->second : 0;
  };
  EXPECT_DOUBLE_EQ(task.recall_accuracy(oracle, 10, 48, rng), 1.0);
}

TEST(Induction, RandomGuessNearChance) {
  data::InductionTask task({});
  Rng rng(5);
  Rng grng(6);
  auto guess = [&task, &grng](const std::vector<int64_t>&) -> int64_t {
    return task.is_key(0) ? 8 + grng.uniform_int(0, 7) : 0;  // random value token
  };
  const double acc = task.recall_accuracy(guess, 20, 48, rng);
  EXPECT_LT(acc, 0.35);  // chance = 1/8 plus noise
}

// What a tiny model learns on the induction task: the *grammar* (a value
// token follows a key) reliably; the in-context *binding* (which value)
// does not emerge at this scale — induction heads are a capability with a
// known scale/training threshold, which makes this task a useful probe for
// what compression/window choices preserve. We assert the grammar and
// document the binding limitation.
TEST(Induction, TinyModelLearnsGrammarNotBinding) {
  data::InductionTask task({.n_keys = 4, .n_values = 4, .n_fillers = 2, .seed = 1});
  nn::ModelConfig cfg = edgellm::testing::tiny_config();
  cfg.vocab = task.vocab();
  cfg.max_seq = 48;
  Rng rng(7);
  nn::CausalLm model(cfg, rng);
  core::TunerConfig t = core::TunerConfig::vanilla();
  t.optim.lr = 1e-2f;
  core::AdaptiveLayerTuner tuner(model, t, Rng(8));
  Rng drng(9);
  for (int i = 0; i < 400; ++i) tuner.step(task.sample_batch(4, 32, drng));

  // Grammar check: after a key, the argmax prediction is a value token.
  Rng erng(10);
  int64_t value_predictions = 0, total = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const auto stream = task.sample(40, erng);
    for (size_t i = 4; i + 1 < stream.size(); ++i) {
      if (!task.is_key(stream[i])) continue;
      const std::vector<int64_t> prefix(stream.begin(),
                                        stream.begin() + static_cast<int64_t>(i) + 1);
      const Tensor logits = model.forward_eval(
          prefix, 1, static_cast<int64_t>(prefix.size()), cfg.n_layers);
      if (task.is_value(ops::argmax_lastdim(logits).back())) ++value_predictions;
      ++total;
    }
  }
  ASSERT_GT(total, 0);
  // Values are 4 of 10 vocab tokens; grammar-aware predictions should be
  // value tokens nearly always.
  EXPECT_GT(static_cast<double>(value_predictions) / static_cast<double>(total), 0.9);
}

TEST(Induction, BatchShapes) {
  data::InductionTask task({});
  Rng rng(11);
  const data::LmBatch b = task.sample_batch(3, 16, rng);
  EXPECT_EQ(b.inputs.size(), 48u);
  EXPECT_EQ(b.targets.size(), 48u);
  for (size_t i = 0; i < b.inputs.size(); ++i) {
    EXPECT_GE(b.inputs[i], 0);
    EXPECT_LT(b.inputs[i], task.vocab());
  }
  EXPECT_THROW(task.sample(1, rng), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Bootstrap statistics
// ---------------------------------------------------------------------------

TEST(Stats, CiCoversTheMean) {
  Rng rng(12);
  std::vector<float> samples;
  for (int i = 0; i < 50; ++i) samples.push_back(rng.normal(5.0f, 1.0f));
  Rng brng(13);
  const auto ci = data::bootstrap_mean_ci(samples, 0.95, 1000, brng);
  EXPECT_TRUE(ci.contains(ci.mean));
  EXPECT_LT(ci.lo, ci.hi);
  EXPECT_NEAR(ci.mean, 5.0, 0.5);
  EXPECT_LT(ci.hi - ci.lo, 1.2);  // ~4 * sigma/sqrt(50)
}

TEST(Stats, TighterWithMoreSamples) {
  Rng rng(14);
  std::vector<float> small, big;
  for (int i = 0; i < 10; ++i) small.push_back(rng.normal(0.0f, 1.0f));
  for (int i = 0; i < 200; ++i) big.push_back(rng.normal(0.0f, 1.0f));
  Rng b1(15), b2(15);
  const auto ci_small = data::bootstrap_mean_ci(small, 0.95, 800, b1);
  const auto ci_big = data::bootstrap_mean_ci(big, 0.95, 800, b2);
  EXPECT_LT(ci_big.hi - ci_big.lo, ci_small.hi - ci_small.lo);
}

TEST(Stats, OverlapsAndValidation) {
  data::ConfidenceInterval a{1.0, 0.5, 1.5};
  data::ConfidenceInterval b{1.4, 1.2, 1.8};
  data::ConfidenceInterval c{3.0, 2.5, 3.5};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  Rng rng(16);
  EXPECT_THROW(data::bootstrap_mean_ci({1.0f}, 0.95, 1000, rng), std::invalid_argument);
  EXPECT_THROW(data::bootstrap_mean_ci({1.0f, 2.0f}, 1.5, 1000, rng), std::invalid_argument);
  EXPECT_THROW(data::bootstrap_mean_ci({1.0f, 2.0f}, 0.95, 10, rng), std::invalid_argument);
}

}  // namespace
}  // namespace edgellm
