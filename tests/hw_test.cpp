// Hardware cost-model and schedule-search tests.
#include <gtest/gtest.h>

#include "hw/search.hpp"
#include "test_util.hpp"

namespace edgellm::hw {
namespace {

GemmWorkload make_gemm(int64_t m, int64_t n, int64_t k, int bits = 16, float sp = 0.0f,
                       bool structured = false) {
  GemmWorkload g;
  g.name = "g";
  g.m = m;
  g.n = n;
  g.k = k;
  g.weight_bits = bits;
  g.sparsity = sp;
  g.structured = structured;
  g.weights_resident_eligible = true;
  return g;
}

TEST(Device, BitScaling) {
  const DeviceModel dev = default_edge_device();
  EXPECT_DOUBLE_EQ(dev.mac_throughput_scale(16), 1.0);
  EXPECT_DOUBLE_EQ(dev.mac_throughput_scale(8), 2.0);
  EXPECT_DOUBLE_EQ(dev.mac_throughput_scale(4), 4.0);
  EXPECT_DOUBLE_EQ(dev.mac_throughput_scale(2), 8.0);
  EXPECT_THROW(dev.mac_throughput_scale(1), std::invalid_argument);
}

TEST(Device, SparsitySkipping) {
  const DeviceModel dev = default_edge_device();
  EXPECT_DOUBLE_EQ(dev.effective_mac_fraction(0.5f, true), 0.5);
  EXPECT_DOUBLE_EQ(dev.effective_mac_fraction(0.5f, false), 0.75);
  EXPECT_DOUBLE_EQ(dev.effective_mac_fraction(0.0f, false), 1.0);
}

TEST(Schedule, ComputeCyclesMatchRoofline) {
  const DeviceModel dev = default_edge_device();
  const GemmWorkload g = make_gemm(64, 64, 64);
  Schedule s;
  s.tile_m = s.tile_n = s.tile_k = 64;  // single tile pass
  s.double_buffer = true;
  const ScheduleCost c = evaluate_schedule(dev, g, s, dev.sram_bytes);
  ASSERT_TRUE(c.feasible);
  EXPECT_DOUBLE_EQ(c.compute_cycles, 64.0 * 64.0 * 64.0 / dev.peak_macs_per_cycle +
                                         dev.tile_overhead_cycles);
  EXPECT_LE(c.utilization, 1.0 + 1e-9);
}

TEST(Schedule, TileOverheadPenalisesTinyTiles) {
  const DeviceModel dev = default_edge_device();
  const GemmWorkload g = make_gemm(128, 128, 128);
  Schedule big;
  big.tile_m = big.tile_n = big.tile_k = 64;
  Schedule tiny;
  tiny.tile_m = tiny.tile_n = tiny.tile_k = 8;
  const ScheduleCost cb = evaluate_schedule(dev, g, big, dev.sram_bytes);
  const ScheduleCost ct = evaluate_schedule(dev, g, tiny, dev.sram_bytes);
  ASSERT_TRUE(cb.feasible && ct.feasible);
  // 4096 tiles at 8^3 vs 8 tiles at 64^3: the overhead gap must show.
  EXPECT_GT(ct.compute_cycles, cb.compute_cycles * 5.0);
}

TEST(Schedule, TrafficIsAtLeastCompulsory) {
  const DeviceModel dev = default_edge_device();
  const GemmWorkload g = make_gemm(32, 48, 64);
  for (LoopOrder o : kAllLoopOrders) {
    Schedule s;
    s.tile_m = s.tile_n = s.tile_k = 16;
    s.order = o;
    const ScheduleCost c = evaluate_schedule(dev, g, s, dev.sram_bytes);
    ASSERT_TRUE(c.feasible);
    const double compulsory = 32 * 64 * 2.0 + 64 * 48 * 2.0 + 32 * 48 * 2.0;
    EXPECT_GE(c.dram_bytes, compulsory - 1e-6) << to_string(o);
  }
}

TEST(Schedule, FullTilingReachesCompulsoryTraffic) {
  const DeviceModel dev = default_edge_device();
  const GemmWorkload g = make_gemm(16, 16, 16);
  Schedule s;
  s.tile_m = s.tile_n = s.tile_k = 16;  // single tile: everything loaded once
  s.order = LoopOrder::kMNK;
  s.double_buffer = false;
  const ScheduleCost c = evaluate_schedule(dev, g, s, dev.sram_bytes);
  ASSERT_TRUE(c.feasible);
  EXPECT_DOUBLE_EQ(c.dram_bytes, 16 * 16 * 2.0 + 16 * 16 * 2.0 + 16 * 16 * 2.0);
}

TEST(Schedule, PartialSumSpillCostsMore) {
  const DeviceModel dev = default_edge_device();
  const GemmWorkload g = make_gemm(64, 64, 256);
  Schedule inner_k;
  inner_k.tile_m = inner_k.tile_n = inner_k.tile_k = 16;
  inner_k.order = LoopOrder::kMNK;  // k innermost: C resident
  Schedule outer_k = inner_k;
  outer_k.order = LoopOrder::kKNM;  // k outermost: C spills
  const ScheduleCost a = evaluate_schedule(dev, g, inner_k, dev.sram_bytes);
  const ScheduleCost b = evaluate_schedule(dev, g, outer_k, dev.sram_bytes);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_LT(a.dram_bytes, b.dram_bytes);
}

TEST(Schedule, InfeasibleWhenTilesExceedSram) {
  DeviceModel dev = default_edge_device();
  dev.sram_bytes = 1024.0;
  const GemmWorkload g = make_gemm(256, 256, 256);
  Schedule s;
  s.tile_m = s.tile_n = s.tile_k = 128;
  EXPECT_FALSE(evaluate_schedule(dev, g, s, dev.sram_bytes).feasible);
}

TEST(Schedule, PinningRemovesWeightTraffic) {
  const DeviceModel dev = default_edge_device();
  const GemmWorkload g = make_gemm(64, 64, 64, /*bits=*/4);
  Schedule s;
  s.tile_m = s.tile_n = s.tile_k = 32;
  s.order = LoopOrder::kNMK;  // n outer: A reloaded, B would reload too
  const ScheduleCost unpinned = evaluate_schedule(dev, g, s, dev.sram_bytes);
  Schedule sp = s;
  sp.pin_weights = true;
  const ScheduleCost pinned = evaluate_schedule(dev, g, sp, dev.sram_bytes);
  ASSERT_TRUE(unpinned.feasible && pinned.feasible);
  EXPECT_LT(pinned.dram_bytes, unpinned.dram_bytes);
  EXPECT_GT(pinned.sram_bytes_used, unpinned.sram_bytes_used);
}

TEST(Schedule, DoubleBufferOverlapsComputeAndMemory) {
  const DeviceModel dev = default_edge_device();
  const GemmWorkload g = make_gemm(128, 128, 128);
  Schedule s;
  s.tile_m = s.tile_n = s.tile_k = 32;
  s.double_buffer = false;
  const ScheduleCost serial = evaluate_schedule(dev, g, s, dev.sram_bytes);
  s.double_buffer = true;
  const ScheduleCost overlapped = evaluate_schedule(dev, g, s, dev.sram_bytes);
  ASSERT_TRUE(serial.feasible && overlapped.feasible);
  EXPECT_LT(overlapped.cycles, serial.cycles);
  EXPECT_DOUBLE_EQ(overlapped.cycles,
                   std::max(overlapped.compute_cycles, overlapped.dram_cycles));
  EXPECT_DOUBLE_EQ(serial.cycles, serial.compute_cycles + serial.dram_cycles);
}

// Property: fewer weight bits never slow down a fixed schedule.
class BitLatency : public ::testing::TestWithParam<int> {};

TEST_P(BitLatency, MonotoneInBits) {
  const DeviceModel dev = default_edge_device();
  Schedule s;
  s.tile_m = s.tile_n = s.tile_k = 32;
  double prev = 0.0;
  for (int bits : {2, 3, 4, 8, 16}) {
    const GemmWorkload g = make_gemm(64, 96, GetParam(), bits);
    const ScheduleCost c = evaluate_schedule(dev, g, s, dev.sram_bytes);
    ASSERT_TRUE(c.feasible);
    EXPECT_GE(c.cycles, prev - 1e-9) << "bits=" << bits;
    prev = c.cycles;
  }
}

INSTANTIATE_TEST_SUITE_P(KDims, BitLatency, ::testing::Values(32, 64, 128, 256));

TEST(Schedule, StructuredSparsityFasterThanUnstructured) {
  const DeviceModel dev = default_edge_device();
  Schedule s;
  s.tile_m = s.tile_n = s.tile_k = 32;
  const ScheduleCost dense =
      evaluate_schedule(dev, make_gemm(128, 128, 128, 16, 0.0f), s, dev.sram_bytes);
  const ScheduleCost unstruct =
      evaluate_schedule(dev, make_gemm(128, 128, 128, 16, 0.6f, false), s, dev.sram_bytes);
  const ScheduleCost structured =
      evaluate_schedule(dev, make_gemm(128, 128, 128, 16, 0.6f, true), s, dev.sram_bytes);
  EXPECT_LT(structured.compute_cycles, unstruct.compute_cycles);
  EXPECT_LT(unstruct.compute_cycles, dense.compute_cycles);
}

TEST(Search, BeatsNaiveOnEveryGemm) {
  const DeviceModel dev = default_edge_device();
  const SearchConfig cfg;
  for (const GemmWorkload& g :
       {make_gemm(256, 64, 64), make_gemm(64, 256, 512, 4), make_gemm(33, 17, 130)}) {
    const GemmPlan best = search_gemm(dev, g, dev.sram_bytes, cfg);
    const ScheduleCost naive = evaluate_schedule(dev, g, naive_schedule(), dev.sram_bytes);
    ASSERT_TRUE(best.cost.feasible);
    EXPECT_LE(best.cost.cycles, naive.cycles);
  }
}

TEST(Search, RespectsSramBudget) {
  const DeviceModel dev = default_edge_device();
  const SearchConfig cfg;
  const GemmWorkload g = make_gemm(256, 256, 256);
  const GemmPlan p = search_gemm(dev, g, 8 * 1024.0, cfg);
  ASSERT_TRUE(p.cost.feasible);
  EXPECT_LE(p.cost.sram_bytes_used, 8 * 1024.0);
}

TEST(Workload, BlockForwardGemmCount) {
  nn::ModelConfig cfg = edgellm::testing::tiny_config();
  const LayerWorkload w = block_forward_workload(cfg, 0, {}, 2, 8);
  EXPECT_EQ(w.gemms.size(), 8u);  // q,k,v,o,scores,ctx,fc1,fc2
  // MACs: 4 * rows*c*c + 2 * rows*c*f + 2 * b*h*t*t*dh
  const int64_t rows = 16, c = 16, f = 32;
  const int64_t expect = 4 * rows * c * c + rows * c * f * 2 + 2 * 2 * 2 * 8 * 8 * 8;
  EXPECT_EQ(w.total_macs(), expect);
}

TEST(Workload, BackwardRoughlyTwiceForward) {
  nn::ModelConfig cfg = edgellm::testing::tiny_config();
  const LayerWorkload fwd = block_forward_workload(cfg, 0, {}, 4, 16);
  const LayerWorkload bwd = block_backward_workload(cfg, 0, {}, 4, 16);
  EXPECT_GT(bwd.total_macs(), 1.8 * fwd.total_macs());
  EXPECT_LT(bwd.total_macs(), 2.2 * fwd.total_macs());
}

TEST(Workload, IterationScalesWithDepth) {
  nn::ModelConfig cfg = edgellm::testing::tiny_config();
  std::vector<LayerCompression> comp(static_cast<size_t>(cfg.n_layers));
  IterationSpec full{4, 16, cfg.n_layers, cfg.n_layers, true};
  IterationSpec shallow{4, 16, cfg.n_layers, 1, false};
  IterationSpec early{4, 16, 1, 1, false};
  int64_t macs_full = 0, macs_shallow = 0, macs_early = 0;
  for (const auto& w : training_iteration_workloads(cfg, comp, full)) macs_full += w.total_macs();
  for (const auto& w : training_iteration_workloads(cfg, comp, shallow)) {
    macs_shallow += w.total_macs();
  }
  for (const auto& w : training_iteration_workloads(cfg, comp, early)) macs_early += w.total_macs();
  EXPECT_LT(macs_shallow, macs_full);
  EXPECT_LT(macs_early, macs_shallow);
}

TEST(Workload, RejectsBadSpecs) {
  nn::ModelConfig cfg = edgellm::testing::tiny_config();
  std::vector<LayerCompression> comp(2);  // wrong count
  EXPECT_THROW(training_iteration_workloads(cfg, comp, {}), std::invalid_argument);
  comp.resize(static_cast<size_t>(cfg.n_layers));
  IterationSpec bad{4, 16, 7, 0, false};
  EXPECT_THROW(training_iteration_workloads(cfg, comp, bad), std::invalid_argument);
}

TEST(Search, IterationPlanComposesAndPins) {
  const DeviceModel dev = default_edge_device();
  nn::ModelConfig cfg = edgellm::testing::tiny_config();
  std::vector<LayerCompression> comp(static_cast<size_t>(cfg.n_layers), {4, 0.5f, false});
  IterationSpec iter{4, 16, cfg.n_layers, 2, false};
  const auto workloads = training_iteration_workloads(cfg, comp, iter);

  SearchConfig scfg;
  const IterationPlan searched = schedule_iteration(dev, workloads, scfg);
  const IterationPlan naive = schedule_iteration_naive(dev, workloads);
  EXPECT_LT(searched.total_cycles, naive.total_cycles);
  EXPECT_GT(searched.gemm_utilization, naive.gemm_utilization);
  EXPECT_GT(searched.pinned_bytes, 0.0);  // tiny 4-bit weights should pin
  EXPECT_LE(searched.pinned_bytes, scfg.pin_budget_fraction * dev.sram_bytes);

  SearchConfig no_pin = scfg;
  no_pin.allow_pinning = false;
  const IterationPlan unpinned = schedule_iteration(dev, workloads, no_pin);
  EXPECT_EQ(unpinned.pinned_bytes, 0.0);
  EXPECT_LE(searched.total_cycles, unpinned.total_cycles + 1e-6);
}

TEST(Search, LucCompressionSpeedsUpIteration) {
  const DeviceModel dev = default_edge_device();
  // Use a model big enough that GEMMs dominate the iteration (on the tiny
  // test config the elementwise traffic floor hides the GEMM savings).
  nn::ModelConfig cfg;
  cfg.vocab = 256;
  cfg.d_model = 256;
  cfg.n_layers = 4;
  cfg.n_heads = 4;
  cfg.max_seq = 64;
  IterationSpec iter{4, 64, cfg.n_layers, cfg.n_layers, true};
  SearchConfig scfg;

  std::vector<LayerCompression> fp16(static_cast<size_t>(cfg.n_layers));
  std::vector<LayerCompression> low(static_cast<size_t>(cfg.n_layers), {3, 0.5f, false});
  const auto plan_fp = schedule_iteration(dev, training_iteration_workloads(cfg, fp16, iter), scfg);
  const auto plan_low = schedule_iteration(dev, training_iteration_workloads(cfg, low, iter), scfg);
  EXPECT_LT(plan_low.total_cycles, plan_fp.total_cycles);
}

TEST(Elementwise, PureBandwidthCost) {
  const DeviceModel dev = default_edge_device();
  const ScheduleCost c = elementwise_cost(dev, 1024.0);
  EXPECT_DOUBLE_EQ(c.cycles, 1024.0 / dev.dram_bytes_per_cycle);
  EXPECT_DOUBLE_EQ(c.energy_pj, 1024.0 * dev.dram_energy_pj_per_byte);
  EXPECT_THROW(elementwise_cost(dev, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace edgellm::hw
