#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace edgellm {
namespace {

TEST(Tensor, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.numel(), 1);
  EXPECT_EQ(t.ndim(), 0);
  EXPECT_FLOAT_EQ(t.item(), 0.0f);
}

TEST(Tensor, ShapeAndFill) {
  Tensor t({2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.dim(-1), 3);
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 7.0f);
  EXPECT_THROW(t.at(2, 0), std::invalid_argument);
  EXPECT_THROW(t.at(0), std::invalid_argument);  // wrong rank
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor r = t.reshape({3, 2});
  EXPECT_FLOAT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, ValueMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, NegativeShapeThrows) { EXPECT_THROW(Tensor({-1, 2}), std::invalid_argument); }

TEST(Tensor, AllClose) {
  Tensor a = Tensor::from_values({1.0f, 2.0f});
  Tensor b = Tensor::from_values({1.0f, 2.000001f});
  EXPECT_TRUE(a.allclose(b, 1e-4f));
  EXPECT_FALSE(a.allclose(b, 1e-8f));
  EXPECT_FALSE(a.allclose(Tensor({3}), 1.0f));
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(3);
  const std::vector<float> w = {0.0f, 0.0f, 1.0f, 0.0f};
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.categorical(w), 2);
}

TEST(Rng, CategoricalRejectsZeroTotal) {
  Rng rng(3);
  const std::vector<float> w = {0.0f, 0.0f};
  EXPECT_THROW(rng.categorical(w), std::invalid_argument);
}

TEST(Ops, MatmulSmall) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  Tensor c = ops::matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Ops, MatmulShapeMismatchThrows) {
  EXPECT_THROW(ops::matmul(Tensor({2, 3}), Tensor({4, 2})), std::invalid_argument);
}

// Property: matmul_tn(A, B) == matmul(A^T, B) and matmul_nt(A, B) == matmul(A, B^T).
class MatmulVariants : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulVariants, TransposedFormsAgree) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  const Tensor a = randn({m, k}, rng);
  const Tensor b = randn({k, n}, rng);
  const Tensor ref = ops::matmul(a, b);

  const Tensor at = ops::transpose2d(a);
  EXPECT_TRUE(ops::matmul_tn(at, b).allclose(ref, 1e-4f));

  const Tensor bt = ops::transpose2d(b);
  EXPECT_TRUE(ops::matmul_nt(a, bt).allclose(ref, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatmulVariants,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                                           std::make_tuple(5, 7, 3), std::make_tuple(8, 8, 8),
                                           std::make_tuple(1, 9, 2), std::make_tuple(16, 4, 16)));

// Property: bmm variants agree with per-slice 2-d matmuls.
class BmmVariants : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(BmmVariants, MatchesSlicewiseMatmul) {
  const auto [bs, m, k, n] = GetParam();
  Rng rng(bs * 1000 + m * 100 + k * 10 + n);
  const Tensor a = randn({bs, m, k}, rng);
  const Tensor b = randn({bs, k, n}, rng);
  const Tensor c = ops::bmm(a, b);
  for (int t = 0; t < bs; ++t) {
    Tensor as({m, k});
    Tensor bs2({k, n});
    for (int64_t i = 0; i < m * k; ++i) as[i] = a[t * m * k + i];
    for (int64_t i = 0; i < k * n; ++i) bs2[i] = b[t * k * n + i];
    const Tensor ref = ops::matmul(as, bs2);
    for (int64_t i = 0; i < m * n; ++i) EXPECT_NEAR(c[t * m * n + i], ref[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BmmVariants,
                         ::testing::Values(std::make_tuple(1, 2, 3, 4), std::make_tuple(3, 4, 4, 4),
                                           std::make_tuple(2, 1, 5, 1), std::make_tuple(4, 8, 2, 8)));

TEST(Ops, BmmTransposedFormsAgree) {
  Rng rng(11);
  const Tensor a = randn({3, 4, 5}, rng);
  const Tensor b = randn({3, 5, 6}, rng);
  const Tensor ref = ops::bmm(a, b);

  // bmm_nt: B stored as [bs, n, k]
  Tensor bt({3, 6, 5});
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < 5; ++i) {
      for (int j = 0; j < 6; ++j) bt[t * 30 + j * 5 + i] = b[t * 30 + i * 6 + j];
    }
  }
  EXPECT_TRUE(ops::bmm_nt(a, bt).allclose(ref, 1e-4f));

  // bmm_tn: A stored as [bs, k, m]
  Tensor at({3, 5, 4});
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < 4; ++i) {
      for (int p = 0; p < 5; ++p) at[t * 20 + p * 4 + i] = a[t * 20 + i * 5 + p];
    }
  }
  EXPECT_TRUE(ops::bmm_tn(at, b).allclose(ref, 1e-4f));
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(5);
  const Tensor x = randn({4, 7}, rng, 0.0f, 3.0f);
  const Tensor y = ops::softmax_lastdim(x);
  for (int r = 0; r < 4; ++r) {
    float s = 0.0f;
    for (int c = 0; c < 7; ++c) {
      EXPECT_GT(y[r * 7 + c], 0.0f);
      s += y[r * 7 + c];
    }
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxStableUnderLargeInputs) {
  Tensor x({1, 3}, std::vector<float>{1000.0f, 1000.0f, 1000.0f});
  const Tensor y = ops::softmax_lastdim(x);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(y[i], 1.0f / 3.0f, 1e-5f);
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(6);
  const Tensor x = randn({3, 5}, rng);
  const Tensor a = ops::log_softmax_lastdim(x);
  const Tensor s = ops::softmax_lastdim(x);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_NEAR(a[i], std::log(s[i]), 1e-5f);
}

TEST(Ops, SoftmaxBackwardMatchesFiniteDifference) {
  Rng rng(9);
  Tensor x = randn({2, 4}, rng);
  const Tensor go = randn({2, 4}, rng);
  const Tensor y = ops::softmax_lastdim(x);
  const Tensor gx = ops::softmax_lastdim_backward(y, go);

  const float h = 1e-3f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    auto scalar_loss = [&] {
      const Tensor yy = ops::softmax_lastdim(x);
      float l = 0.0f;
      for (int64_t j = 0; j < yy.numel(); ++j) l += yy[j] * go[j];
      return l;
    };
    x[i] = orig + h;
    const float lp = scalar_loss();
    x[i] = orig - h;
    const float lm = scalar_loss();
    x[i] = orig;
    EXPECT_NEAR(gx[i], (lp - lm) / (2 * h), 5e-3f);
  }
}

// Property: activation gradients match finite differences.
struct ActCase {
  const char* name;
  Tensor (*fwd)(const Tensor&);
  Tensor (*bwd)(const Tensor&, const Tensor&);
};

class ActivationGrad : public ::testing::TestWithParam<int> {};

TEST_P(ActivationGrad, FiniteDifference) {
  static const ActCase cases[] = {{"relu", ops::relu, ops::relu_grad},
                                  {"gelu", ops::gelu, ops::gelu_grad},
                                  {"silu", ops::silu, ops::silu_grad}};
  const ActCase& c = cases[GetParam()];
  Rng rng(21 + GetParam());
  Tensor x = randn({10}, rng);
  // keep relu away from the kink
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.2f;
  }
  Tensor go = randn({10}, rng);
  const Tensor g = c.bwd(x, go);
  const float h = 1e-3f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + h;
    const float lp = c.fwd(x)[i] * go[i];
    x[i] = orig - h;
    const float lm = c.fwd(x)[i] * go[i];
    x[i] = orig;
    EXPECT_NEAR(g[i], (lp - lm) / (2 * h), 5e-3f) << c.name << " idx " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, ActivationGrad, ::testing::Values(0, 1, 2));

TEST(Ops, Reductions) {
  const Tensor x = Tensor::from_values({1.0f, -2.0f, 3.0f, -4.0f});
  EXPECT_FLOAT_EQ(ops::sum(x), -2.0f);
  EXPECT_FLOAT_EQ(ops::mean(x), -0.5f);
  EXPECT_FLOAT_EQ(ops::max_value(x), 3.0f);
  EXPECT_FLOAT_EQ(ops::min_value(x), -4.0f);
  EXPECT_NEAR(ops::l2_norm(x), std::sqrt(30.0f), 1e-5f);
}

TEST(Ops, AddBiasBroadcasts) {
  Tensor x({2, 2, 3}, 1.0f);
  const Tensor b = Tensor::from_values({1.0f, 2.0f, 3.0f});
  const Tensor y = ops::add_bias(x, b);
  EXPECT_FLOAT_EQ(y.at(1, 1, 0), 2.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 2), 4.0f);
}

TEST(Ops, ArgmaxLastdim) {
  Tensor x({2, 3}, std::vector<float>{0.1f, 0.9f, 0.2f, 5.0f, -1.0f, 2.0f});
  const auto am = ops::argmax_lastdim(x);
  ASSERT_EQ(am.size(), 2u);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 0);
}

TEST(Ops, MseAndTranspose) {
  const Tensor a = Tensor::from_values({1.0f, 2.0f});
  const Tensor b = Tensor::from_values({2.0f, 4.0f});
  EXPECT_FLOAT_EQ(ops::mse(a, b), 2.5f);
  Tensor m({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor t = ops::transpose2d(m);
  EXPECT_FLOAT_EQ(t.at(2, 1), 6.0f);
  EXPECT_FLOAT_EQ(t.at(0, 1), 4.0f);
}

}  // namespace
}  // namespace edgellm
