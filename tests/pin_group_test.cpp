// Weight-pinning group accounting: forward and dX GEMMs of the same layer
// (including the LM head) must share one pinned-byte allocation.
#include <gtest/gtest.h>

#include "hw/search.hpp"
#include "test_util.hpp"

namespace edgellm::hw {
namespace {

TEST(PinGroups, ForwardAndDxShareResidency) {
  // Tiny GQA+SwiGLU model: every weight fits, so everything eligible pins
  // and the pinned total must equal the sum over DISTINCT weight tensors.
  nn::ModelConfig cfg;
  cfg.vocab = 64;
  cfg.d_model = 32;
  cfg.n_layers = 2;
  cfg.n_heads = 4;
  cfg.n_kv_heads = 2;
  cfg.swiglu = true;
  cfg.max_seq = 32;
  std::vector<LayerCompression> comp(2, {4, 0.5f, true});
  IterationSpec iter{4, 16, 2, 2, false, false};
  const auto workloads = training_iteration_workloads(cfg, comp, iter);

  const DeviceModel dev = default_edge_device();
  const IterationPlan plan = schedule_iteration(dev, workloads, SearchConfig{});

  // Distinct per-block weights at 4-bit row-pruned-50% (structured => half
  // the dense bytes): q 256 + k 128 + v 128 + o 256 + 3x fc 1024, x2 blocks,
  // plus the fp16 head (vocab x d_model x 2 bytes) once.
  const double block_bytes = 256 + 128 + 128 + 256 + 3 * 1024;
  const double head_bytes = 64.0 * 32.0 * 2.0;
  EXPECT_DOUBLE_EQ(plan.pinned_bytes, 2 * block_bytes + head_bytes);

  // Both the head forward and head dX GEMMs run pinned.
  int pinned_head_gemms = 0;
  for (const LayerPlan& lp : plan.layers) {
    for (const GemmPlan& gp : lp.gemms) {
      if (gp.gemm.name.rfind("head", 0) == 0 && gp.schedule.pin_weights) ++pinned_head_gemms;
    }
  }
  EXPECT_EQ(pinned_head_gemms, 2);
}

}  // namespace
}  // namespace edgellm::hw
