// CausalLm behaviour: exits, depth-limited backprop, plan scoping,
// state-dict round-trips.
#include <gtest/gtest.h>

#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "tensor/ops.hpp"
#include "test_util.hpp"

namespace edgellm::nn {
namespace {

using edgellm::testing::tiny_config;

std::vector<int64_t> seq_tokens(int64_t n, int64_t vocab) {
  std::vector<int64_t> t(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) t[static_cast<size_t>(i)] = i % vocab;
  return t;
}

TEST(Model, ExitNormalization) {
  Rng rng(1);
  ModelConfig cfg = tiny_config();
  cfg.exit_layers = {2};  // final (3) must be added automatically
  CausalLm model(cfg, rng);
  EXPECT_EQ(model.exit_layers(), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(model.exit_index(2), 0);
  EXPECT_EQ(model.exit_index(3), 1);
  EXPECT_THROW(model.exit_index(1), std::invalid_argument);
}

TEST(Model, InvalidExitConfigThrows) {
  Rng rng(1);
  ModelConfig cfg = tiny_config();
  cfg.exit_layers = {0};
  EXPECT_THROW(CausalLm(cfg, rng), std::invalid_argument);
  cfg.exit_layers = {4};
  EXPECT_THROW(CausalLm(cfg, rng), std::invalid_argument);
}

TEST(Model, ForwardEvalMatchesTrainingForward) {
  Rng rng(2);
  const ModelConfig cfg = tiny_config();
  CausalLm model(cfg, rng);
  const auto toks = seq_tokens(8, cfg.vocab);

  for (int64_t exit_layer : model.exit_layers()) {
    const Tensor eval = model.forward_eval(toks, 2, 4, exit_layer);
    ForwardPlan plan{exit_layer, 1, false};
    const Tensor train = model.forward(toks, 2, 4, plan);
    EXPECT_TRUE(eval.allclose(train, 1e-5f)) << "exit " << exit_layer;
    model.clear_cache();
  }
}

TEST(Model, AllExitsMatchesPerExitEval) {
  Rng rng(3);
  const ModelConfig cfg = tiny_config();
  CausalLm model(cfg, rng);
  const auto toks = seq_tokens(12, cfg.vocab);
  const auto all = model.forward_all_exits(toks, 3, 4);
  ASSERT_EQ(all.size(), model.exit_layers().size());
  for (size_t e = 0; e < all.size(); ++e) {
    const Tensor single = model.forward_eval(toks, 3, 4, model.exit_layers()[e]);
    EXPECT_TRUE(all[e].allclose(single, 1e-5f));
  }
}

TEST(Model, EvalDoesNotCache) {
  Rng rng(4);
  const ModelConfig cfg = tiny_config();
  CausalLm model(cfg, rng);
  (void)model.forward_eval(seq_tokens(8, cfg.vocab), 2, 4, cfg.n_layers);
  EXPECT_EQ(model.cached_activation_bytes(), 0);
}

TEST(Model, DepthLimitedBackpropTouchesOnlyWindow) {
  Rng rng(5);
  const ModelConfig cfg = tiny_config();  // 3 layers, exits {1,2,3}
  CausalLm model(cfg, rng);
  const auto toks = seq_tokens(8, cfg.vocab);
  const std::vector<int64_t> targets = seq_tokens(8, cfg.vocab);

  ForwardPlan plan{/*exit=*/3, /*depth=*/1, /*emb=*/false};
  model.zero_grad();
  const Tensor logits = model.forward(toks, 2, 4, plan);
  const CrossEntropyResult ce = cross_entropy(logits, targets);
  model.backward(ce.grad_logits);

  for (Param* p : model.params()) {
    const float gnorm = ops::l2_norm(p->grad);
    const bool in_window = p->name.rfind("block2", 0) == 0 ||
                           p->name.rfind("exit3", 0) == 0 ||
                           p->name.rfind("lm_head", 0) == 0;
    if (in_window) {
      EXPECT_GT(gnorm, 0.0f) << p->name;
    } else {
      EXPECT_FLOAT_EQ(gnorm, 0.0f) << p->name;
    }
  }
}

TEST(Model, ActivationBytesScaleWithWindow) {
  Rng rng(6);
  const ModelConfig cfg = tiny_config();
  CausalLm model(cfg, rng);
  const auto toks = seq_tokens(16, cfg.vocab);

  std::vector<int64_t> bytes;
  for (int64_t depth : {0, 1, 2, 3}) {
    model.clear_cache();
    ForwardPlan plan{3, depth, false};
    (void)model.forward(toks, 4, 4, plan);
    bytes.push_back(model.cached_activation_bytes());
  }
  EXPECT_LT(bytes[0], bytes[1]);
  EXPECT_LT(bytes[1], bytes[2]);
  EXPECT_LT(bytes[2], bytes[3]);
  // Block caches are identical, so increments are equal.
  EXPECT_EQ(bytes[1] - bytes[0], bytes[2] - bytes[1]);
}

TEST(Model, PlanValidation) {
  Rng rng(7);
  const ModelConfig cfg = tiny_config();
  CausalLm model(cfg, rng);
  const auto toks = seq_tokens(8, cfg.vocab);
  EXPECT_THROW(model.forward(toks, 2, 4, {3, 4, false}), std::invalid_argument);
  EXPECT_THROW(model.forward(toks, 2, 4, {3, 1, true}), std::invalid_argument);
  EXPECT_THROW(model.forward(toks, 2, 4, {5, 1, false}), std::invalid_argument);
  EXPECT_THROW(model.forward(toks, 2, 5, {3, 1, false}), std::invalid_argument);
  EXPECT_THROW(model.backward(Tensor({8, cfg.vocab})), std::invalid_argument);
}

TEST(Model, ParamsForPlanScoping) {
  Rng rng(8);
  const ModelConfig cfg = tiny_config();
  CausalLm model(cfg, rng);

  const auto window = model.params_for_plan({3, 1, false});
  for (Param* p : window) {
    EXPECT_TRUE(p->name.rfind("block2", 0) == 0 || p->name.rfind("exit3", 0) == 0 ||
                p->name.rfind("lm_head", 0) == 0)
        << p->name;
  }

  const auto full = model.params_for_plan({3, 3, true});
  bool has_emb = false;
  for (Param* p : full) has_emb |= p->name == "tok_emb.weight";
  EXPECT_TRUE(has_emb);
  EXPECT_GT(full.size(), window.size());
}

TEST(Model, StateDictRoundTrip) {
  Rng rng(9);
  const ModelConfig cfg = tiny_config();
  CausalLm a(cfg, rng);
  Rng rng2(99);
  CausalLm b(cfg, rng2);
  const auto toks = seq_tokens(8, cfg.vocab);

  const Tensor before = a.forward_eval(toks, 2, 4, cfg.n_layers);
  b.load_state_dict(a.state_dict());
  const Tensor after = b.forward_eval(toks, 2, 4, cfg.n_layers);
  EXPECT_TRUE(before.allclose(after, 1e-6f));

  auto bad = a.state_dict();
  bad.erase("pos_emb");
  EXPECT_THROW(b.load_state_dict(bad), std::invalid_argument);
}

TEST(Model, SeparateExitHeadsOption) {
  Rng rng(10);
  ModelConfig cfg = tiny_config();
  cfg.tie_exit_heads = false;
  CausalLm model(cfg, rng);
  // 3 exits -> 3 heads -> more params than tied.
  Rng rng2(10);
  ModelConfig tied = tiny_config();
  CausalLm tied_model(tied, rng2);
  EXPECT_GT(model.param_count(), tied_model.param_count());
  const auto toks = seq_tokens(8, cfg.vocab);
  EXPECT_EQ(model.forward_all_exits(toks, 2, 4).size(), 3u);
}

TEST(Model, CompressionChangesEvalButKeepsShape) {
  Rng rng(11);
  const ModelConfig cfg = tiny_config();
  CausalLm model(cfg, rng);
  const auto toks = seq_tokens(8, cfg.vocab);
  const Tensor fp = model.forward_eval(toks, 2, 4, cfg.n_layers);

  quant::QuantSpec q;
  q.bits = 2;
  for (TransformerBlock* b : model.blocks()) b->set_compression(q, std::nullopt);
  const Tensor q2 = model.forward_eval(toks, 2, 4, cfg.n_layers);
  EXPECT_EQ(fp.shape(), q2.shape());
  EXPECT_FALSE(fp.allclose(q2, 1e-3f));  // 2-bit must visibly perturb outputs

  for (TransformerBlock* b : model.blocks()) b->set_compression(std::nullopt, std::nullopt);
  const Tensor restored = model.forward_eval(toks, 2, 4, cfg.n_layers);
  EXPECT_TRUE(fp.allclose(restored, 1e-6f));
}

TEST(Model, WeightStorageShrinksUnderPolicy) {
  Rng rng(12);
  const ModelConfig cfg = tiny_config();
  CausalLm model(cfg, rng);
  const double fp = model.weight_storage_bytes();
  quant::QuantSpec q;
  q.bits = 4;
  for (TransformerBlock* b : model.blocks()) b->set_compression(q, std::nullopt);
  EXPECT_LT(model.weight_storage_bytes(), fp);
}

}  // namespace
}  // namespace edgellm::nn
