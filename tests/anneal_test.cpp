// Simulated-annealing schedule search: quality vs the exhaustive optimum.
#include <gtest/gtest.h>

#include "hw/anneal.hpp"
#include "test_util.hpp"

namespace edgellm::hw {
namespace {

GemmWorkload make_gemm(int64_t m, int64_t n, int64_t k, int bits = 16) {
  GemmWorkload g;
  g.name = "g";
  g.m = m;
  g.n = n;
  g.k = k;
  g.weight_bits = bits;
  return g;
}

TEST(Anneal, ProducesFeasibleSchedule) {
  const DeviceModel dev = default_edge_device();
  const GemmWorkload g = make_gemm(128, 256, 64, 4);
  AnnealConfig cfg;
  cfg.iterations = 500;
  const GemmPlan p = anneal_gemm(dev, g, dev.sram_bytes, cfg);
  EXPECT_TRUE(p.cost.feasible);
  EXPECT_LE(p.cost.sram_bytes_used, dev.sram_bytes);
  EXPECT_GT(p.cost.cycles, 0.0);
}

TEST(Anneal, Deterministic) {
  const DeviceModel dev = default_edge_device();
  const GemmWorkload g = make_gemm(96, 96, 96);
  AnnealConfig cfg;
  cfg.seed = 42;
  const GemmPlan a = anneal_gemm(dev, g, dev.sram_bytes, cfg);
  const GemmPlan b = anneal_gemm(dev, g, dev.sram_bytes, cfg);
  EXPECT_DOUBLE_EQ(a.cost.cycles, b.cost.cycles);
  EXPECT_EQ(a.schedule.tile_m, b.schedule.tile_m);
}

// Property: anneal lands within a few percent of (or beats) the exhaustive
// optimum across representative GEMMs — its search space is a superset of
// the exhaustive grid.
class AnnealQuality : public ::testing::TestWithParam<int> {};

TEST_P(AnnealQuality, NearExhaustiveOptimum) {
  static const GemmWorkload gemms[] = {
      make_gemm(128, 128, 128), make_gemm(512, 64, 256, 4), make_gemm(33, 100, 77),
      make_gemm(256, 1024, 64, 8)};
  const GemmWorkload& g = gemms[GetParam()];
  const DeviceModel dev = default_edge_device();

  const SearchConfig scfg;
  const GemmPlan exhaustive = search_gemm(dev, g, dev.sram_bytes, scfg);
  AnnealConfig acfg;
  acfg.iterations = 3000;
  acfg.seed = 7 + static_cast<uint64_t>(GetParam());
  const GemmPlan annealed = anneal_gemm(dev, g, dev.sram_bytes, acfg);

  EXPECT_LE(annealed.cost.cycles, exhaustive.cost.cycles * 1.05)
      << "anneal " << annealed.schedule.to_string() << " vs exhaustive "
      << exhaustive.schedule.to_string();
}

INSTANTIATE_TEST_SUITE_P(Gemms, AnnealQuality, ::testing::Range(0, 4));

TEST(Anneal, RejectsBadConfig) {
  const DeviceModel dev = default_edge_device();
  const GemmWorkload g = make_gemm(64, 64, 64);
  AnnealConfig cfg;
  cfg.iterations = 0;
  EXPECT_THROW(anneal_gemm(dev, g, dev.sram_bytes, cfg), std::invalid_argument);
  cfg = AnnealConfig{};
  cfg.temp_end = 1.0;
  EXPECT_THROW(anneal_gemm(dev, g, dev.sram_bytes, cfg), std::invalid_argument);
  cfg = AnnealConfig{};
  cfg.min_tile = 2;
  EXPECT_THROW(anneal_gemm(dev, g, dev.sram_bytes, cfg), std::invalid_argument);
}

TEST(Anneal, IterationLevelSchedulingWorks) {
  const DeviceModel dev = default_edge_device();
  nn::ModelConfig cfg = edgellm::testing::tiny_config();
  std::vector<LayerCompression> comp(static_cast<size_t>(cfg.n_layers), {4, 0.0f, false});
  IterationSpec iter{4, 16, cfg.n_layers, 2, false};
  const auto workloads = training_iteration_workloads(cfg, comp, iter);

  AnnealConfig acfg;
  acfg.iterations = 800;
  const IterationPlan annealed = schedule_iteration_annealed(dev, workloads, acfg);
  const IterationPlan deflt = schedule_iteration_default(dev, workloads);
  const IterationPlan naive = schedule_iteration_naive(dev, workloads);

  // Anneal must beat naive decisively and sit near (or below) the default.
  EXPECT_LT(annealed.total_cycles, naive.total_cycles / 2.0);
  EXPECT_LT(annealed.total_cycles, deflt.total_cycles * 1.10);
  EXPECT_EQ(annealed.pinned_bytes, 0.0);
  EXPECT_THROW(schedule_iteration_annealed(dev, {}, acfg), std::invalid_argument);
}

TEST(Anneal, CanLeaveTheCoarseGrid) {
  // With a non-power-of-two-friendly GEMM, the annealer may find tiles the
  // exhaustive {8,16,32,64,128} grid cannot express; at minimum it must
  // never be forced onto the grid.
  const DeviceModel dev = default_edge_device();
  const GemmWorkload g = make_gemm(36, 36, 300);
  AnnealConfig cfg;
  cfg.iterations = 4000;
  const GemmPlan p = anneal_gemm(dev, g, dev.sram_bytes, cfg);
  EXPECT_TRUE(p.cost.feasible);
  EXPECT_EQ(p.schedule.tile_m % 4, 0);
}

}  // namespace
}  // namespace edgellm::hw
